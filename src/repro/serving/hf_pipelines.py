"""Generative serving engine (HuggingFace-Pipelines-like, §2.1/§4.3).

The paper's generative experiments run the HuggingFace Pipelines inference
engine under Poisson arrivals that saturate the accelerator.  Each request is
an autoregressive decode *stream*: its tokens are produced one step at a time,
and the stream's time-per-token (TPT) cadence is what Apparate improves.  The
engine below models the accelerator as a fixed number of concurrent decode
slots (``max_batch_size``): an arriving sequence waits for a free slot and is
then decoded as its own stream, with per-token exit decisions delegated to a
policy object.  The same engine therefore serves the vanilla model (never
exits), FREE (one fixed ramp and threshold), the optimal oracle, and Apparate
(adaptive ramp + threshold with parallel decoding).

Timing of one stream follows §3.4 exactly:

* a token that exits at a ramp of depth ``p`` releases after only the head
  portion of the decode step and its tail layers are deferred;
* the first subsequent non-exiting token pays the full step plus a mild
  penalty for running the deferred tails batched alongside it;
* if too many exited tokens accumulate, a flush runs their tails as one batch
  before the stream continues (bounding the staleness of KV states).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence

import numpy as np

from repro.generative.decoding import DecodeTimingModel, PrefillModel, TokenRecord
from repro.generative.parallel import ParallelDecodingState, TokenFeedback, truncate_feedback
from repro.generative.sequences import GenerativeWorkload, SequenceSample
from repro.obs.recorder import NULL_RECORDER
from repro.utils.stats import summarize_latencies

__all__ = ["TokenDecision", "TokenExitPolicy", "VanillaTokenPolicy",
           "GenerativeMetrics", "ContinuousBatchingEngine"]


@dataclass(frozen=True)
class TokenDecision:
    """Exit decision for one token."""

    exited: bool
    exit_depth: Optional[float]
    error_score: float
    correct: bool


class TokenExitPolicy(Protocol):
    """Per-token exit policy plugged into the engine."""

    def decide(self, sequence_id: int, token_index: int, raw_difficulty: float,
               sharpness: float) -> TokenDecision:
        ...  # pragma: no cover - protocol definition

    def feedback(self, records: Sequence[TokenFeedback]) -> None:
        ...  # pragma: no cover - protocol definition


class VanillaTokenPolicy:
    """Never exits: every token runs the full model."""

    def decide(self, sequence_id: int, token_index: int, raw_difficulty: float,
               sharpness: float) -> TokenDecision:
        return TokenDecision(exited=False, exit_depth=None, error_score=1.0, correct=True)

    def feedback(self, records: Sequence[TokenFeedback]) -> None:
        return None


@dataclass
class GenerativeMetrics:
    """Aggregated outcome of one generative serving run."""

    tokens: List[TokenRecord] = field(default_factory=list)
    sequence_accuracy: Dict[int, float] = field(default_factory=dict)
    queueing_delays_ms: Dict[int, float] = field(default_factory=dict)
    makespan_ms: float = 0.0
    #: parallel-decoding bookkeeping: tokens whose tails were deferred, and
    #: how many *forced* flushes ran those tails as standalone batches
    #: (piggybacked tails on a non-exiting token's full step are not flushes).
    deferred_tokens: int = 0
    deferred_flushes: int = 0
    #: sequences shed by deadline admission: their wait had already blown the
    #: TTFT SLO when a decode slot freed up, so no token was decoded for them.
    shed_sequence_ids: List[int] = field(default_factory=list)
    #: KV-cache accounting (populated only when the run priced a cache model;
    #: ``kv_enabled`` gates the extra summary keys so cache-off runs keep a
    #: bit-identical summary).  Hits/misses are prompt tokens whose prefill
    #: was skipped/paid at slot claim; evicted/recompute count cache tokens.
    kv_enabled: bool = False
    kv_hit_tokens: int = 0
    kv_miss_tokens: int = 0
    kv_evictions: int = 0
    kv_evicted_tokens: int = 0
    kv_recompute_tokens: int = 0

    def tpt_values(self) -> np.ndarray:
        return np.array([t.tpt_ms for t in self.tokens], dtype=float)

    def tpt_summary(self) -> Dict[str, float]:
        return summarize_latencies(self.tpt_values())

    def median_tpt(self) -> float:
        return self.tpt_summary()["p50"]

    def p25_tpt(self) -> float:
        return self.tpt_summary()["p25"]

    def p95_tpt(self) -> float:
        return self.tpt_summary()["p95"]

    def p99_tpt(self) -> float:
        return self.tpt_summary()["p99"]

    def token_latency_values(self) -> np.ndarray:
        """Per-token latency as a *served* stream experiences it.

        Identical to the TPT cadence except that each sequence's first token
        is measured from the sequence's arrival, so slot queueing counts
        against it (time-to-first-token).  This is the fleet-level signal:
        under load a cluster's tail is dominated by sequences waiting for a
        decode slot, which the decode-only TPT distribution cannot see.
        """
        delays = self.queueing_delays_ms
        return np.array([t.tpt_ms + delays.get(t.sequence_id, 0.0)
                         if t.token_index == 0 else t.tpt_ms
                         for t in self.tokens], dtype=float)

    def token_latency_summary(self) -> Dict[str, float]:
        return summarize_latencies(self.token_latency_values())

    def p99_token_latency(self) -> float:
        return self.token_latency_summary()["p99"]

    def ttft_values(self) -> np.ndarray:
        """Time-to-first-token of every served sequence.

        Measured from the sequence's *arrival* to the release of its first
        token, so everything a user waits through counts: queueing for a
        slot, (disaggregated) prefill and KV transfer, and the first decode
        step.  This is the latency SLO production LLM serving is sized
        against — the decode-cadence TPT distribution cannot see it.
        """
        delays = self.queueing_delays_ms
        return np.array([t.tpt_ms + delays.get(t.sequence_id, 0.0)
                         for t in self.tokens if t.token_index == 0], dtype=float)

    def ttft_summary(self) -> Dict[str, float]:
        return summarize_latencies(self.ttft_values())

    def mean_ttft(self) -> float:
        return self.ttft_summary()["mean"]

    def p99_ttft(self) -> float:
        return self.ttft_summary()["p99"]

    def num_shed(self) -> int:
        return len(self.shed_sequence_ids)

    def shed_rate(self) -> float:
        """Fraction of admitted sequences shed by the TTFT deadline check."""
        total = len(self.sequence_accuracy) + self.num_shed()
        if total == 0:
            return 0.0
        return self.num_shed() / total

    def mean_sequence_accuracy(self) -> float:
        if not self.sequence_accuracy:
            return 1.0
        return float(np.mean(list(self.sequence_accuracy.values())))

    def exit_rate(self) -> float:
        if not self.tokens:
            return 0.0
        return sum(1 for t in self.tokens if t.exited) / len(self.tokens)

    def median_queueing_ms(self) -> float:
        if not self.queueing_delays_ms:
            return 0.0
        return float(np.median(list(self.queueing_delays_ms.values())))

    def throughput_tokens_per_s(self) -> float:
        if self.makespan_ms <= 0:
            return 0.0
        return 1000.0 * len(self.tokens) / self.makespan_ms

    def kv_hit_rate(self) -> float:
        """Fraction of prompt tokens served from resident cache prefixes."""
        total = self.kv_hit_tokens + self.kv_miss_tokens
        if total == 0:
            return 0.0
        return self.kv_hit_tokens / total

    def summary(self) -> Dict[str, float]:
        tpt = self.tpt_summary()
        ttft = self.ttft_summary()
        data = {
            "tpt_p25_ms": tpt["p25"],
            "tpt_p50_ms": tpt["p50"],
            "tpt_p95_ms": tpt["p95"],
            "tpt_p99_ms": tpt["p99"],
            "token_p99_ms": self.p99_token_latency(),
            "ttft_mean_ms": ttft["mean"],
            "ttft_p99_ms": ttft["p99"],
            "sequence_accuracy": self.mean_sequence_accuracy(),
            "exit_rate": self.exit_rate(),
            "throughput_tokens_per_s": self.throughput_tokens_per_s(),
            "num_tokens": float(len(self.tokens)),
            "deferred_tokens": float(self.deferred_tokens),
            "deferred_flushes": float(self.deferred_flushes),
            "shed": float(self.num_shed()),
            "shed_rate": self.shed_rate(),
        }
        if self.kv_enabled:
            data.update({
                "kv_hit_rate": self.kv_hit_rate(),
                "kv_hit_tokens": float(self.kv_hit_tokens),
                "kv_miss_tokens": float(self.kv_miss_tokens),
                "kv_evictions": float(self.kv_evictions),
                "kv_evicted_tokens": float(self.kv_evicted_tokens),
                "kv_recompute_tokens": float(self.kv_recompute_tokens),
            })
        return data

    # ----------------------------------------------------------------- merge
    @classmethod
    def merged(cls, parts: Sequence["GenerativeMetrics"],
               makespan_ms: Optional[float] = None) -> "GenerativeMetrics":
        """Combine several replicas' runs into one aggregate view.

        Token records, per-sequence accuracies and queueing delays add up
        (sequence ids are globally unique within one workload); the makespan
        defaults to the longest part unless the caller supplies the fleet's
        global wall-clock span.
        """
        out = cls()
        for metrics in parts:
            out.tokens.extend(metrics.tokens)
            out.sequence_accuracy.update(metrics.sequence_accuracy)
            out.queueing_delays_ms.update(metrics.queueing_delays_ms)
            out.deferred_tokens += metrics.deferred_tokens
            out.deferred_flushes += metrics.deferred_flushes
            out.shed_sequence_ids.extend(metrics.shed_sequence_ids)
            out.kv_enabled = out.kv_enabled or metrics.kv_enabled
            out.kv_hit_tokens += metrics.kv_hit_tokens
            out.kv_miss_tokens += metrics.kv_miss_tokens
            out.kv_evictions += metrics.kv_evictions
            out.kv_evicted_tokens += metrics.kv_evicted_tokens
            out.kv_recompute_tokens += metrics.kv_recompute_tokens
            out.makespan_ms = max(out.makespan_ms, metrics.makespan_ms)
        if makespan_ms is not None:
            out.makespan_ms = makespan_ms
        return out


class ContinuousBatchingEngine:
    """Slot-based generative serving engine with pluggable exit policies.

    ``prefill`` (optional) makes the engine *monolithic* in the
    prefill/decode sense: a sequence claiming a decode slot first runs its
    prompt's chunked prefill on the replica's own accelerator, stretched by
    compute contention with the decode streams already in flight (see
    :meth:`~repro.generative.decoding.PrefillModel.inslot_prefill_ms`).
    Without it (the default) prompts are assumed pre-processed — the paper's
    decode-only setup, and the configuration disaggregated decode replicas
    run (their prompts were prefilled in the dedicated pool).

    ``ttft_slo_ms`` (optional) enables deadline shedding: a sequence whose
    wait has already blown the time-to-first-token SLO when a slot frees up
    is shed (no token decoded) and counted in
    :attr:`GenerativeMetrics.shed_sequence_ids`.
    """

    def __init__(self, timing: DecodeTimingModel, max_batch_size: int = 8,
                 flush_limit: int = 8, prefill: Optional[PrefillModel] = None,
                 ttft_slo_ms: Optional[float] = None) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if ttft_slo_ms is not None and ttft_slo_ms <= 0:
            raise ValueError(f"ttft_slo_ms must be positive, got {ttft_slo_ms}")
        self.timing = timing
        self.max_batch_size = int(max_batch_size)
        self.flush_limit = int(flush_limit)
        self.prefill = prefill
        self.ttft_slo_ms = None if ttft_slo_ms is None else float(ttft_slo_ms)
        #: Observability recorder for single-replica ``run`` (cluster runners
        #: record around their own slot logic instead).
        self.obs = NULL_RECORDER

    # ------------------------------------------------------------------ run
    def run(self, workload: GenerativeWorkload, policy: TokenExitPolicy) -> GenerativeMetrics:
        """Serve every sequence in ``workload`` under ``policy``.

        Sequences are admitted in arrival order as decode slots free up
        (continuous batching); each admitted sequence is decoded as its own
        stream whose per-token timing follows the parallel-decoding rules.
        """
        metrics = GenerativeMetrics()
        queue = sorted(workload.sequences, key=lambda s: (s.arrival_ms, s.sequence_id))
        if not queue:
            return metrics

        slot_free_ms = [queue[0].arrival_ms] * self.max_batch_size
        first_arrival = queue[0].arrival_ms
        last_completion = first_arrival

        obs = self.obs
        for sample in queue:
            slot = int(np.argmin(slot_free_ms))
            slot_start = max(sample.arrival_ms, slot_free_ms[slot])
            start = slot_start
            if self.prefill is not None:
                busy = sum(1 for t in slot_free_ms if t > start + 1e-9)
                start += self.prefill.inslot_prefill_ms(sample.prompt_tokens,
                                                        busy)
            if obs.enabled:
                obs.admit(sample.sequence_id, sample.arrival_ms,
                          kind="sequence", pool="serve", replica=0)
            # Deadline admission runs on the time decode would start (in-slot
            # prefill included), consistent with the TTFT the sequence would
            # record — a sequence that provably cannot make its SLO is shed
            # before any compute is spent on it.
            if self.ttft_slo_ms is not None \
                    and start - sample.arrival_ms > self.ttft_slo_ms:
                metrics.shed_sequence_ids.append(sample.sequence_id)
                if obs.enabled:
                    obs.phase(sample.sequence_id, "queue",
                              sample.arrival_ms, start)
                    obs.close(sample.sequence_id, start, outcome="shed")
                continue
            metrics.queueing_delays_ms[sample.sequence_id] = start - sample.arrival_ms
            completion = self.decode_stream(sample, start, policy, metrics)
            if obs.enabled:
                obs.phase(sample.sequence_id, "queue",
                          sample.arrival_ms, slot_start)
                if start != slot_start:
                    obs.phase(sample.sequence_id, "prefill", slot_start, start)
                obs.phase(sample.sequence_id, "decode", start, completion)
                obs.close(sample.sequence_id, completion, outcome="served",
                          tokens=sample.num_tokens)
            slot_free_ms[slot] = completion
            last_completion = max(last_completion, completion)

        metrics.makespan_ms = max(last_completion - first_arrival, 1e-9)
        return metrics

    # --------------------------------------------------------------- streams
    def decode_stream(self, sample: SequenceSample, start_ms: float,
                      policy: TokenExitPolicy, metrics: GenerativeMetrics,
                      speed: float = 1.0) -> float:
        """Decode one sequence as a stream; returns its completion time.

        ``speed`` divides every step duration — a cluster replica with a 2×
        :class:`~repro.serving.fleet.ReplicaProfile` genuinely releases
        tokens twice as fast.  The single-replica ``run`` uses base speed.
        """
        state = ParallelDecodingState(flush_limit=self.flush_limit)
        now = start_ms
        last_release = start_ms
        correct_tokens = 0
        forced_flushes = 0
        # Feedback is grouped per parallel-decoding instance: the run of
        # consecutive exited tokens closed by the first non-exiting token.
        instance: List[TokenFeedback] = []

        for token_idx in range(sample.num_tokens):
            decision = policy.decide(sample.sequence_id, token_idx,
                                     float(sample.token_difficulty[token_idx]),
                                     float(sample.token_sharpness[token_idx]))
            ramp_overhead = self.timing.ramp_overhead_ms(1)

            if decision.exited and decision.exit_depth is not None:
                # Head-only step: release the token at the ramp, defer its tail.
                release = now + (self.timing.partial_step_ms(1, decision.exit_depth)
                                 + ramp_overhead) / speed
                now = release
                state.defer(decision.exit_depth)
                if state.needs_flush():
                    # Forced flush: run the accumulated tails as one batch
                    # before the next token's step (keeps KV staleness bounded).
                    now += self.timing.flush_step_ms(state.pending_depth,
                                                     state.pending_tokens) / speed
                    state.flush()
                    forced_flushes += 1
                released_correct = decision.correct
            else:
                # Full step, plus the deferred tails of previously exited
                # tokens batched alongside it (parallel decoding).
                step = self.timing.full_step_ms(1) + ramp_overhead
                step += self.timing.deferred_tail_ms(state.pending_depth,
                                                     state.pending_tokens, 1)
                state.flush()
                release = now + step / speed
                now = release
                released_correct = True

            tpt = max(release - last_release, 0.0)
            metrics.tokens.append(TokenRecord(
                sequence_id=sample.sequence_id, token_index=token_idx,
                release_ms=release, tpt_ms=tpt, exited=decision.exited,
                exit_depth=decision.exit_depth, correct=released_correct))
            # Feedback carries the ramp's *agreement* with the original model
            # regardless of exiting: Apparate eventually computes every
            # token's tail layers, so the signal is always available (§3.4).
            instance.append(TokenFeedback(sequence_id=sample.sequence_id,
                                          token_index=token_idx,
                                          error_score=decision.error_score,
                                          exited=decision.exited,
                                          correct=decision.correct))
            if not decision.exited:
                # The non-exiting token closes this parallel-decoding instance.
                policy.feedback(truncate_feedback(instance))
                instance = []
            last_release = release
            correct_tokens += int(released_correct)

        metrics.sequence_accuracy[sample.sequence_id] = \
            correct_tokens / max(sample.num_tokens, 1)
        metrics.deferred_tokens += state.total_deferred
        metrics.deferred_flushes += forced_flushes
        if instance:
            policy.feedback(truncate_feedback(instance))
        return now
