"""Generative fleet control plane: token-level early exits at cluster scale.

This module closes the last capability gap of the reproduction: the
continuous-batching generative engine (:mod:`repro.serving.hf_pipelines`)
previously only ran on a single replica, so the paper's token-level
latency/goodput story could not be examined under the fleet dynamics
(balancing, autoscaling, drain/retire) that PR 3 built for classification.

:class:`GenerativeClusterPlatform` dispatches one stream of generative
*sequences* across a dynamic fleet of decode replicas on a shared global
clock:

* each replica models the accelerator as ``max_batch_size`` concurrent decode
  slots; an admitted sequence waits in the replica's queue for a free slot and
  is then decoded as its own stream — per-token exits, deferred tails and
  forced flushes follow §3.4 exactly (the stream decode is *shared code* with
  the single-replica engine, so one replica reproduces it bit-for-bit);
* the pluggable :class:`~repro.serving.cluster.LoadBalancer` policies operate
  unchanged, but are costed by outstanding **decode work** — queued tokens ×
  the replica's depth-scaled expected step time — rather than request count,
  so ``least_work_left`` sees through a queue of short SQuAD answers standing
  behind one long CNN/DailyMail summary;
* the pluggable :class:`~repro.serving.autoscaler.Autoscaler` policies are
  evaluated on the global clock; scale-out boots replicas after the
  provisioning delay and scale-in *drains* them — a draining replica finishes
  its queued and in-flight sequences (no token is ever abandoned mid-stream),
  takes no new dispatches, then retires;
* replicas may be heterogeneous: a :class:`~repro.serving.fleet.ReplicaProfile`
  speed multiplier divides every decode-step duration.

:class:`GenerativeClusterMetrics` mirrors the classification
:class:`~repro.serving.metrics.ClusterMetrics` rollups at token granularity:
fleet TPT percentiles (including the queueing-inclusive per-token p99 that
dominates under load), deferred-flush counts, the fleet-size timeline and
cost-weighted replica-seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.faults import FaultSchedule, FaultSpec, coerce_faults
from repro.generative.decoding import (KVCacheAccountant, PrefillModel,
                                       kv_bytes_per_token)
from repro.obs.recorder import NULL_RECORDER
from repro.serving.autoscaler import Autoscaler, build_autoscaler
from repro.serving.cluster import LoadBalancer, build_balancer
from repro.serving.fleet import (ACTIVE, DRAINING, RETIRED, BaseFleet,
                                 ReplicaProfile)
from repro.serving.hf_pipelines import (ContinuousBatchingEngine,
                                        GenerativeMetrics, TokenExitPolicy,
                                        VanillaTokenPolicy)
from repro.serving.kernel import (PoolState, SimPlatform, pool_is_static,
                                  scale_pool)
from repro.serving.metrics import dispatch_imbalance_ratio
from repro.tenancy import (TenancyConfig, TenantRuntime, build_sequence_runtime,
                           coerce_tenancy, sequence_rollups, tenant_backlog)

#: shared stateless policy used to pin a tenant's sequences to the full model
#: (exit-policy override ``allow_exits=False``).
_NO_EXIT_POLICY = VanillaTokenPolicy()

__all__ = ["GenerativeReplicaHandle", "GenerativeReplicaEntry",
           "GenerativeFleetState", "GenerativeClusterMetrics",
           "GenerativeClusterPlatform", "PolicyFactory"]

#: Per-ordinal token-exit-policy source for one run.  Called once per replica
#: (ordinals continue past the initial fleet when the autoscaler scales out);
#: returning a shared object gives fleet-wide ("shared") EE control, fresh
#: objects give per-replica ("independent") control.
PolicyFactory = Callable[[int], TokenExitPolicy]


class _EngineView:
    """Platform-shaped shim over a decode replica for autoscaler policies.

    The classification autoscalers read replica capacity through
    ``handle.platform`` (``max_batch_size`` + ``predicted_batch_time_ms``);
    for a decode replica the analogous quantities are the number of decode
    slots and the expected time to turn every slot over once (mean sequence
    length × depth-scaled step time).
    """

    def __init__(self, entry: "GenerativeReplicaEntry") -> None:
        self._entry = entry

    @property
    def max_batch_size(self) -> int:
        return self._entry.engine.max_batch_size

    def predicted_batch_time_ms(self, batch_size: int) -> float:
        return self._entry.mean_tokens * self._entry.expected_token_ms()


class GenerativeReplicaHandle:
    """Read-only decode-replica view for load balancers and autoscalers.

    Mirrors :class:`~repro.serving.fleet.ReplicaHandle` so every existing
    balancer (round-robin, JSQ, least-work-left, power-of-two, weighted
    variants) and autoscaler (reactive, predictive) runs unchanged on
    generative fleets — the *cost model* underneath is token-level.
    """

    def __init__(self, entry: "GenerativeReplicaEntry") -> None:
        self._entry = entry
        self.index = 0
        self.platform = _EngineView(entry)

    @property
    def replica_id(self) -> int:
        return self._entry.replica_id

    @property
    def profile(self) -> ReplicaProfile:
        return self._entry.profile

    @property
    def weight(self) -> float:
        """Dispatch weight of this replica (its relative speed)."""
        return self._entry.profile.speed

    def queue_length(self) -> int:
        return len(self._entry.queue)

    def jobs_in_system(self, now_ms: float) -> int:
        """Queued sequences plus the streams decoding in occupied slots."""
        return len(self._entry.queue) + self._entry.busy_slots(now_ms)

    def backlog_ms(self, now_ms: float) -> float:
        """Remaining decode time of the stream occupying the *soonest-free*
        slot — when the replica could next start a queued sequence."""
        free = self._entry.next_free_slot_ms()
        return max(0.0, free - now_ms)

    def work_left_ms(self, now_ms: float) -> float:
        """Outstanding decode work in expected milliseconds.

        In-flight streams contribute their remaining slot occupancy; queued
        sequences contribute ``tokens × depth-scaled step time`` at the
        replica's speed.  This is what makes ``least_work_left`` price decode
        replicas correctly: ten queued 12-token answers are cheaper than two
        60-token summaries even though JSQ counts them as five times the load.
        """
        entry = self._entry
        work = sum(max(0.0, t - now_ms) for t in entry.slots)
        if not entry.queue:
            return work
        token_ms = entry.expected_token_ms()
        queued_tokens = sum(s.num_tokens for s in entry.queue)
        # Queued work drains across all slots in parallel.
        return work + queued_tokens * token_ms / entry.engine.max_batch_size

    # ------------------------------------------------------------- KV signals
    def kv_prefix_hit_tokens(self, item) -> int:
        """Shared-prefix tokens of ``item``'s group resident in this
        replica's KV cache (0 when the cache model is disabled)."""
        kv = self._entry.kv
        return kv.prefix_hit_tokens(item) if kv is not None else 0

    def kv_prefix_hit_ms(self, item) -> float:
        """Prefill milliseconds resident shared-prefix tokens would save
        ``item`` here, priced at this replica's re-prefill rate (0 when the
        cache model is disabled)."""
        kv = self._entry.kv
        if kv is None:
            return 0.0
        return kv.prefix_hit_tokens(item) * kv.recompute_ms_per_token

    def kv_overflow_ms(self, item, now_ms: float) -> float:
        """Expected recompute cost of the cache overflow admitting ``item``
        would cause here (0 when the cache model is disabled)."""
        kv = self._entry.kv
        if kv is None:
            return 0.0
        return kv.overflow_tokens(item) * kv.recompute_ms_per_token


@dataclass
class GenerativeReplicaEntry:
    """One decode replica of the fleet: engine, policy, slots and lifecycle."""

    replica_id: int
    engine: ContinuousBatchingEngine
    policy: TokenExitPolicy
    profile: ReplicaProfile
    mean_tokens: float
    #: per-slot completion time of the stream it is decoding (-inf = free).
    slots: List[float] = field(default_factory=list)
    queue: List = field(default_factory=list)
    metrics: GenerativeMetrics = field(default_factory=GenerativeMetrics)
    handle: Optional[GenerativeReplicaHandle] = None
    status: str = ACTIVE
    added_ms: float = 0.0
    retired_ms: Optional[float] = None
    #: sequences the balancer routed here.
    dispatched: int = 0
    last_completion_ms: float = -np.inf
    #: released-token accounting feeding the depth-scaled work estimate.
    released_tokens: int = 0
    released_exits: int = 0
    #: KV-cache accountant (``None`` disables the cache model entirely).
    kv: Optional[KVCacheAccountant] = None
    #: sequence id -> decode slot it occupies; lets an eviction charge the
    #: victim's recompute as an extension of its slot occupancy.
    kv_slot_of: Dict[int, int] = field(default_factory=dict, repr=False,
                                       compare=False)
    #: span hooks (the shared no-op recorder unless the run installs one)
    #: and the pool tag stamped onto this replica's spans/gauges.
    obs: object = field(default=NULL_RECORDER, repr=False, compare=False)
    obs_pool: str = field(default="serve", repr=False, compare=False)
    #: kernel-scheduler bookkeeping: dirty flag + per-slot armed event times.
    _kdirty: bool = field(default=False, repr=False, compare=False)
    _slot_armed: Dict[int, float] = field(default_factory=dict, repr=False,
                                          compare=False)
    _kv_evict_pending: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.slots:
            self.slots = [-np.inf] * self.engine.max_batch_size
        if self.handle is None:
            self.handle = GenerativeReplicaHandle(self)

    # ------------------------------------------------------------------ slots
    def busy_slots(self, now_ms: float) -> int:
        return sum(1 for t in self.slots if t > now_ms + 1e-9)

    def free_slot_index(self, now_ms: float) -> Optional[int]:
        for index, t in enumerate(self.slots):
            if t <= now_ms + 1e-9:
                return index
        return None

    def next_free_slot_ms(self) -> float:
        return min(self.slots)

    def is_idle(self, now_ms: float) -> bool:
        return not self.queue and self.busy_slots(now_ms) == 0

    def active_ms(self, end_ms: float) -> float:
        """Wall-clock time this replica was provisioned (added → retired)."""
        until = self.retired_ms if self.retired_ms is not None else end_ms
        return max(0.0, until - self.added_ms)

    # ------------------------------------------------------------- work model
    def expected_token_ms(self) -> float:
        """Depth-scaled expected decode-step time per token on this replica.

        A full step costs ``full_step + ramp_overhead``; a token that exits at
        the policy's current ramp depth only pays the head portion.  The two
        are blended by this replica's *observed* exit rate so the estimate
        adapts with the policy (and stays exactly ``full_step`` for vanilla).
        Deterministic: depends only on the run's own history.
        """
        timing = self.engine.timing
        overhead = timing.ramp_overhead_ms(1)
        full = timing.full_step_ms(1) + overhead
        depth = getattr(self.policy, "ramp_depth", None)
        threshold = getattr(self.policy, "threshold", 0.0)
        if depth is None or self.released_tokens == 0:
            return full / self.profile.speed
        exit_rate = self.released_exits / self.released_tokens
        if threshold is not None and float(threshold) <= 0.0:
            exit_rate = 0.0
        partial = timing.partial_step_ms(1, float(depth)) + overhead
        return (exit_rate * partial + (1.0 - exit_rate) * full) / self.profile.speed

    def record_stream(self, num_tokens: int, num_exited: int) -> None:
        self.released_tokens += int(num_tokens)
        self.released_exits += int(num_exited)

    # ------------------------------------------------------------ slot claims
    def claim_streams(self, now_ms: float, ttft_slo_ms: Optional[float],
                      tenant_runtime: Optional["TenantRuntime"] = None) -> bool:
        """Free decode slots claim queue heads and run the stream decode.

        This is the one slot-claim loop shared by the monolithic cluster and
        the disaggregated decode pool (whose engines simply carry no in-slot
        prefill model).  Returns whether anything changed at this timestamp.

        The TTFT deadline check runs on the time decode *would start* — for
        a monolithic engine that includes the prompt's in-slot prefill,
        stretched by contention with the busy decode slots — so a sequence
        that provably cannot make its SLO is shed before any compute is
        spent on it, and the shed decision is consistent with the TTFT the
        sequence would have recorded.

        ``tenant_runtime`` (optional) applies per-tenant overrides: a
        sequence whose tenant pins a TTFT SLO sheds against that value
        (``None`` disables shedding for the tenant), and a sequence whose
        tenant forbids exits decodes under the shared vanilla policy.
        """
        progressed = False
        while self.queue:
            slot = self.free_slot_index(now_ms)
            if slot is None:
                break
            sample = self.queue.pop(0)
            kv = self.kv
            hit = kv.prefix_hit_tokens(sample) if kv is not None else 0
            decode_start = now_ms
            if self.engine.prefill is not None:
                # Monolithic in-slot prefill: the prompt's chunks contend
                # with the decode streams already in flight.  Shared-prefix
                # tokens already resident in the KV cache skip their share
                # of the prefill (``hit`` is 0 with the cache disabled).
                decode_start = now_ms + self.engine.prefill.inslot_prefill_ms(
                    sample.prompt_tokens - hit,
                    self.busy_slots(now_ms)) / self.profile.speed
            ttft_limit = ttft_slo_ms
            policy = self.policy
            if tenant_runtime is not None:
                ttft_limit = tenant_runtime.ttft_of.get(sample.sequence_id,
                                                        ttft_slo_ms)
                if sample.sequence_id in tenant_runtime.no_exit_ids:
                    policy = _NO_EXIT_POLICY
            obs = self.obs
            if ttft_limit is not None \
                    and decode_start - sample.arrival_ms > ttft_limit:
                self.metrics.shed_sequence_ids.append(sample.sequence_id)
                if obs.enabled:
                    sid = sample.sequence_id
                    prev = obs.last_phase_end(sid)
                    obs.phase(sid, "queue",
                              sample.arrival_ms if prev is None else prev,
                              now_ms, pool=self.obs_pool,
                              replica=self.replica_id)
                    obs.close(sid, now_ms, outcome="shed")
                progressed = True
                continue
            # Queueing spans arrival -> first decode step, so TTFT rolls up
            # every pipeline stage the sequence crossed.
            self.metrics.queueing_delays_ms[sample.sequence_id] = \
                decode_start - sample.arrival_ms
            before = len(self.metrics.tokens)
            completion = self.engine.decode_stream(
                sample, decode_start, policy, self.metrics,
                speed=self.profile.speed)
            released = self.metrics.tokens[before:]
            num_exited = sum(1 for t in released if t.exited)
            self.record_stream(len(released), num_exited)
            self.slots[slot] = completion
            if kv is not None:
                kv.admit(sample, completion)
                self.kv_slot_of[int(sample.sequence_id)] = slot
            self.last_completion_ms = max(self.last_completion_ms, completion)
            if obs.enabled:
                # The span reuses the exact floats the metrics recorded:
                # queue ends (and decode starts) at ``decode_start``, whose
                # distance from arrival *is* queueing_delays_ms.
                sid = sample.sequence_id
                pool_name = self.obs_pool
                replica = self.replica_id
                prev = obs.last_phase_end(sid)
                queue_start = sample.arrival_ms if prev is None else prev
                if self.engine.prefill is not None and decode_start != now_ms:
                    obs.phase(sid, "queue", queue_start, now_ms,
                              pool=pool_name, replica=replica)
                    obs.phase(sid, "prefill", now_ms, decode_start,
                              pool=pool_name, replica=replica)
                else:
                    obs.phase(sid, "queue", queue_start, decode_start,
                              pool=pool_name, replica=replica)
                obs.phase(sid, "decode", decode_start, completion,
                          pool=pool_name, replica=replica)
                if hit:
                    obs.annotate(sid, kv_hit_tokens=int(hit))
                obs.close(sid, completion, outcome="served",
                          tokens=len(released), exited_tokens=num_exited)
            progressed = True
        return progressed


class GenerativeFleetState(BaseFleet):
    """Dynamic decode-replica membership (ACTIVE → DRAINING → RETIRED)."""

    def add(self, engine: ContinuousBatchingEngine, policy: TokenExitPolicy,
            profile: ReplicaProfile, mean_tokens: float, now_ms: float,
            kv: Optional[KVCacheAccountant] = None) -> GenerativeReplicaEntry:
        entry = GenerativeReplicaEntry(replica_id=self._next_id, engine=engine,
                                       policy=policy, profile=profile,
                                       mean_tokens=mean_tokens, added_ms=now_ms,
                                       kv=kv)
        # Every add path (initial fleet, autoscale boot, crash recovery)
        # funnels here, so new replicas always see the run's recorder.
        entry.obs = self.obs
        entry.obs_pool = self.obs_pool
        return self._register(entry, now_ms)


@dataclass
class GenerativeClusterMetrics:
    """Per-replica token metrics plus fleet-wide rollups for one cluster run.

    ``replicas`` covers every replica that ever decoded during the run —
    including ones the autoscaler retired mid-run — so token conservation and
    all rollups span the full membership history.
    """

    replicas: List[GenerativeMetrics] = field(default_factory=list)
    #: sequences the balancer routed to each replica, aligned with ``replicas``.
    dispatch_counts: List[int] = field(default_factory=list)
    #: global wall-clock span (first arrival to last token release) in ms.
    makespan_ms: float = 0.0
    #: (time_ms, active_replicas) recorded at every membership change.
    fleet_timeline: List[Tuple[float, int]] = field(default_factory=list)
    #: cost-weighted replica-seconds consumed by the fleet.
    replica_seconds: float = 0.0
    #: unweighted provisioned milliseconds (denominator for utilization).
    replica_active_ms: float = 0.0
    #: per-replica provisioned milliseconds, aligned with ``replicas``.
    replica_uptimes_ms: List[float] = field(default_factory=list)
    #: fault injection: crashes fired, replacements booted, and queued
    #: sequences requeued to surviving replicas by a crash.
    crashes: int = 0
    recoveries: int = 0
    requeued: int = 0
    #: per-tenant rollups (empty unless the run configured tenancy); see
    #: :func:`repro.tenancy.rollup.sequence_rollups` for the keys.
    tenant_rollups: Dict[str, Dict[str, float]] = field(default_factory=dict)
    _aggregate: Optional[GenerativeMetrics] = field(default=None, init=False,
                                                    repr=False, compare=False)

    def num_replicas(self) -> int:
        return len(self.replicas)

    def peak_replicas(self) -> int:
        """Largest number of simultaneously active replicas during the run."""
        if not self.fleet_timeline:
            return len(self.replicas)
        return max(count for _, count in self.fleet_timeline)

    def aggregate(self) -> GenerativeMetrics:
        """Merged token stream measured on the cluster's global clock."""
        if self._aggregate is None:
            self._aggregate = GenerativeMetrics.merged(
                self.replicas, makespan_ms=self.makespan_ms)
        return self._aggregate

    def total_tokens(self) -> int:
        return len(self.aggregate().tokens)

    def fleet_throughput_tokens_per_s(self) -> float:
        return self.aggregate().throughput_tokens_per_s()

    def p99_token_latency(self) -> float:
        """Queueing-inclusive per-token p99 over the merged stream."""
        return self.aggregate().p99_token_latency()

    def dispatch_imbalance(self) -> float:
        """Max/mean per-replica dispatch-rate ratio (1.0 = perfectly even)."""
        return dispatch_imbalance_ratio(self.dispatch_counts,
                                        self.replica_uptimes_ms)

    def per_replica_summaries(self) -> List[Dict[str, float]]:
        return [m.summary() for m in self.replicas]

    def summary(self) -> Dict[str, float]:
        """Fleet rollup: aggregate token stats plus cluster-only metrics."""
        data = self.aggregate().summary()
        data.update({
            "num_replicas": float(self.num_replicas()),
            "peak_replicas": float(self.peak_replicas()),
            "dispatch_imbalance": self.dispatch_imbalance(),
            "replica_seconds": float(self.replica_seconds),
        })
        if self.crashes or self.recoveries:
            data["crashes"] = float(self.crashes)
            data["recoveries"] = float(self.recoveries)
            data["requeued"] = float(self.requeued)
        return data


class GenerativeClusterPlatform:
    """A dynamic fleet of continuous-batching decode replicas.

    The event loop mirrors :class:`~repro.serving.cluster.ClusterPlatform`
    phase for phase — boot, admit/dispatch, autoscale, serve, retire, advance
    the shared clock — with the classification replica step replaced by slot
    claiming: a free decode slot claims the replica's queue head and runs the
    stream decode shared with the single-replica engine.

    Parameters
    ----------
    engines:
        Per-initial-replica :class:`ContinuousBatchingEngine`.  Engines are
        stateless (all mutable state lives in the run's fleet entries), so
        one engine may be shared by every replica.
    balancer / seed:
        Dispatch policy name/instance and the seed for stochastic balancers.
    profiles:
        Optional per-initial-replica :class:`ReplicaProfile` (or speed floats
        / ``"speed[:cost]"`` strings) for heterogeneous fleets.
    autoscaler / min_replicas / max_replicas:
        Elasticity, exactly as in the classification cluster.  Scaled-out
        replicas reuse the first engine's configuration (engines are
        stateless) and run at ``scale_out_profile`` (default: base speed).
    kv_capacity:
        Fleet-default per-replica KV-cache budget in bytes (a replica
        profile's ``kv_capacity_bytes`` overrides it).  ``None`` (the
        default) disables the cache model entirely and the run is
        bit-identical to pre-cache behaviour; with a budget set, each
        replica runs a :class:`~repro.generative.decoding.KVCacheAccountant`
        — admissions claim footprint, over-capacity occupancy triggers LRU
        eviction as a kernel event, and an evicted running sequence pays a
        re-prefill recompute as an extension of its decode slot.
    """

    def __init__(self, engines: Sequence[ContinuousBatchingEngine],
                 balancer: Union[str, LoadBalancer] = "round_robin",
                 seed: int = 0,
                 profiles: Optional[Sequence[Union[ReplicaProfile, float, str]]] = None,
                 autoscaler: Union[str, Autoscaler, None] = "none",
                 min_replicas: Optional[int] = None,
                 max_replicas: Optional[int] = None,
                 scale_out_profile: Optional[ReplicaProfile] = None,
                 ttft_slo_ms: Optional[float] = None,
                 tenancy: Union[None, str, TenancyConfig] = None,
                 faults: Union[None, str, FaultSpec, FaultSchedule] = None,
                 kv_capacity: Optional[float] = None,
                 obs=None) -> None:
        self.engines = list(engines)
        if not self.engines:
            raise ValueError("a generative cluster needs at least one replica")
        #: Observability recorder shared by every replica (no-op when unset).
        self.obs = obs if obs is not None else NULL_RECORDER
        #: Kernel schedule counters of the most recent ``run()``.
        self.last_kernel_stats = None
        if ttft_slo_ms is not None and ttft_slo_ms <= 0:
            raise ValueError(f"ttft_slo_ms must be positive, got {ttft_slo_ms}")
        self.ttft_slo_ms = None if ttft_slo_ms is None else float(ttft_slo_ms)
        if kv_capacity is not None and not (
                float(kv_capacity) > 0.0 and np.isfinite(kv_capacity)):
            raise ValueError(f"kv_capacity must be positive and finite bytes, "
                             f"got {kv_capacity}")
        self.kv_capacity = None if kv_capacity is None else float(kv_capacity)
        self.seed = int(seed)
        self.balancer = build_balancer(balancer, seed=seed, kind="generative")
        self.autoscaler = build_autoscaler(autoscaler)
        self.tenancy = coerce_tenancy(tenancy)
        self.faults = coerce_faults(faults)

        n = len(self.engines)
        if profiles is None:
            self.profiles: List[ReplicaProfile] = [ReplicaProfile() for _ in range(n)]
        else:
            self.profiles = [ReplicaProfile.coerce(p) for p in profiles]
            if len(self.profiles) != n:
                raise ValueError(f"got {len(self.profiles)} replica profiles "
                                 f"for {n} replicas")
        self.min_replicas = n if min_replicas is None else int(min_replicas)
        self.max_replicas = n if max_replicas is None else int(max_replicas)
        if not 1 <= self.min_replicas <= n:
            raise ValueError(f"min_replicas must be in [1, {n}] "
                             f"(the initial fleet size), got {self.min_replicas}")
        if self.max_replicas < n:
            raise ValueError(f"max_replicas must be >= the initial fleet size "
                             f"({n}), got {self.max_replicas}")
        self.scale_out_profile = scale_out_profile if scale_out_profile is not None \
            else ReplicaProfile()

    @property
    def num_replicas(self) -> int:
        """Size of the initial fleet (the fleet ``run()`` starts from)."""
        return len(self.engines)

    def _kv_for(self, engine: ContinuousBatchingEngine,
                profile: ReplicaProfile) -> Optional[KVCacheAccountant]:
        """Fresh accountant for one replica (``None`` when the cache model is
        off).  Recompute is priced at the replica's chunked-prefill rate —
        the engine's own prefill model when it has one, otherwise a default
        :class:`PrefillModel` over the same timing spec (a monolith without
        in-slot prefill still pays for re-prefilling evicted context)."""
        capacity = profile.kv_capacity_bytes
        if capacity is None:
            capacity = self.kv_capacity
        if capacity is None:
            return None
        prefill = engine.prefill
        if prefill is None:
            prefill = PrefillModel(engine.timing.spec)
        recompute = prefill.chunk_time_ms() / prefill.tokens_per_chunk \
            / profile.speed
        return KVCacheAccountant(capacity,
                                 kv_bytes_per_token(engine.timing.spec),
                                 recompute_ms_per_token=recompute)

    # --------------------------------------------------------------- main loop
    def run(self, workload, policy_factory: PolicyFactory) -> GenerativeClusterMetrics:
        """Serve every sequence in ``workload`` across the (dynamic) fleet.

        ``policy_factory(ordinal)`` supplies each replica's token-exit policy
        for this run (fresh state per run keeps repeated ``run()`` calls on
        one cluster object bit-identical); returning one shared object gives
        fleet-wide EE control.  Returns per-replica + fleet token metrics
        covering every replica that decoded, including ones retired mid-run.
        """
        self.balancer.reset()
        self.autoscaler.reset()
        self.autoscaler.set_bounds(self.min_replicas, self.max_replicas)

        pending = sorted(workload.sequences,
                         key=lambda s: (s.arrival_ms, s.sequence_id))
        tenant_runtime = build_sequence_runtime(pending, self.tenancy, self.seed)
        num_sequences = len(pending)
        start = pending[0].arrival_ms if pending else 0.0
        mean_tokens = workload.mean_output_length() or 1.0

        fleet = GenerativeFleetState()
        fleet.obs = self.obs
        for engine, profile in zip(self.engines, self.profiles):
            fleet.add(engine, policy_factory(fleet.next_ordinal()), profile,
                      mean_tokens, start, kv=self._kv_for(engine, profile))

        if num_sequences == 0:
            return self._collect(fleet, start, start)

        runner = _GenerativeRun(self, pending, policy_factory, fleet,
                                mean_tokens, start,
                                tenant_runtime=tenant_runtime,
                                faults=self.faults)
        runner.drive()
        self.last_kernel_stats = runner.events.stats()

        end = max((e.last_completion_ms for e in fleet.entries
                   if np.isfinite(e.last_completion_ms)), default=start)
        metrics = self._collect(fleet, start, end)
        metrics.crashes = runner.crashes
        metrics.recoveries = runner.recoveries
        metrics.requeued = runner.requeued
        metrics.kernel_stats = self.last_kernel_stats
        if tenant_runtime is not None:
            metrics.tenant_rollups = sequence_rollups(metrics.aggregate(),
                                                      tenant_runtime)
        return metrics

    def _collect(self, fleet: GenerativeFleetState, start_ms: float,
                 end_ms: float) -> GenerativeClusterMetrics:
        fleet.finalize(end_ms)
        for entry in fleet.entries:
            if entry.metrics.tokens:
                entry.metrics.makespan_ms = max(
                    entry.last_completion_ms - start_ms, 1e-9)
            if entry.kv is not None:
                metrics = entry.metrics
                metrics.kv_enabled = True
                metrics.kv_hit_tokens = entry.kv.hit_tokens
                metrics.kv_miss_tokens = entry.kv.miss_tokens
                metrics.kv_evictions = entry.kv.evictions
                metrics.kv_evicted_tokens = entry.kv.evicted_tokens
                metrics.kv_recompute_tokens = entry.kv.recompute_tokens
        decoded_anything = any(entry.metrics.tokens for entry in fleet.entries)
        makespan = max(end_ms - start_ms, 1e-9) if decoded_anything else 0.0
        return GenerativeClusterMetrics(
            replicas=[entry.metrics for entry in fleet.entries],
            dispatch_counts=[entry.dispatched for entry in fleet.entries],
            makespan_ms=makespan,
            fleet_timeline=list(fleet.timeline),
            replica_seconds=fleet.replica_seconds(end_ms),
            replica_active_ms=fleet.active_replica_ms(end_ms),
            replica_uptimes_ms=[entry.active_ms(end_ms)
                                for entry in fleet.entries],
        )


#: event kinds of the kernel-scheduled generative cluster run.
_BOOT, _SLOT_FREE, _CRASH, _RECOVER, _EVICT = 0, 1, 2, 3, 4


def _run_eviction(sim: SimPlatform, entry: GenerativeReplicaEntry,
                  now_ms: float, slot_kind: int) -> None:
    """Fire one replica's deferred KV-eviction event.

    Evicts LRU residents until occupancy fits; a still-running victim's
    recompute charge extends its decode-slot occupancy (the slot re-prefills
    the evicted context before the stream can finish), so the freed-slot
    event is re-armed at the later time.  Shared by the monolithic cluster
    and the disaggregated decode pool.
    """
    entry._kv_evict_pending = False
    kv = entry.kv
    if kv is None:
        return
    obs = entry.obs
    for seq_id, recompute_ms in kv.evict_to_fit(now_ms):
        if obs.enabled:
            obs.annotate(seq_id, kv_evicted=True)
        slot = entry.kv_slot_of.pop(seq_id, None)
        if slot is None or recompute_ms <= 0.0:
            continue
        if entry.slots[slot] > now_ms + 1e-9:
            entry.slots[slot] += recompute_ms
            entry.last_completion_ms = max(entry.last_completion_ms,
                                           entry.slots[slot])
            if obs.enabled:
                obs.annotate(seq_id, kv_recompute_ms=recompute_ms)
    _arm_slots(sim, entry, now_ms, slot_kind)
    sim.wake(entry)


def _schedule_eviction(sim: SimPlatform, entry: GenerativeReplicaEntry,
                       now_ms: float, evict_kind: int) -> None:
    """Register a same-timestamp eviction event when occupancy overflowed.

    Deferred to an event (rather than evicting inline during the claim pass)
    so eviction observes the full admission state of the timestamp;
    ``_kv_evict_pending`` dedupes, and ``needs_eviction`` requires an
    evictable non-MRU resident, so a single oversubscribing sequence cannot
    re-arm the event forever.
    """
    kv = entry.kv
    if kv is not None and not entry._kv_evict_pending and kv.needs_eviction():
        entry._kv_evict_pending = True
        sim.events.push(now_ms, evict_kind, entry)


def _arm_slots(sim: SimPlatform, entry: GenerativeReplicaEntry,
               now_ms: float, kind: int) -> None:
    """Register a slot-free event per occupied decode slot.

    ``_slot_armed`` remembers the completion time last armed per slot so an
    unchanged slot is never double-registered.  Events never need cancelling:
    a slot with a live future event is occupied, and claims only ever take
    slots whose time has passed, so a stale record in ``_slot_armed`` can
    never collide with a pending event.
    """
    armed = entry._slot_armed
    for index, t in enumerate(entry.slots):
        if t > now_ms + 1e-9 and armed.get(index) != t:
            armed[index] = t
            sim.events.push(t, kind, entry)


class _GenerativeRun(SimPlatform):
    """Kernel-scheduled execution of one :meth:`GenerativeClusterPlatform.run`.

    Same phase order as the seed rescan loop (boots → admit → autoscale →
    slot claims → retire); the slot-claim phase touches only the replicas
    whose queue changed or whose decode slot freed, and the clock advances
    through the event heap (slot completions, boots) plus the arrival cursor.
    """

    def __init__(self, cluster: GenerativeClusterPlatform, pending: List,
                 policy_factory: PolicyFactory, fleet: GenerativeFleetState,
                 mean_tokens: float, start_ms: float,
                 tenant_runtime: Optional[TenantRuntime] = None,
                 faults: Optional[FaultSchedule] = None) -> None:
        super().__init__(start_ms)
        self.install_obs(cluster.obs, start_ms)
        self.cluster = cluster
        self.pending = pending
        self.arrival_times = [s.arrival_ms for s in pending]
        self.num_sequences = len(pending)
        self.next_arrival = 0
        self.policy_factory = policy_factory
        self.fleet = fleet
        self.mean_tokens = mean_tokens
        self.pool = PoolState(fleet)
        self.tenant_runtime = tenant_runtime
        #: fault injection counters + the crashed hardware awaiting recovery.
        self.crashes = 0
        self.recoveries = 0
        self.requeued = 0
        self._crash_stock: List[Tuple[ContinuousBatchingEngine, ReplicaProfile]] = []
        if faults is not None:
            for fault in faults:
                # A crash scheduled before the first arrival fires with it.
                self.events.push(max(fault.crash_ms, start_ms), _CRASH, fault)
        #: fixed-size fleet in band: the per-pass autoscaler consult is a
        #: proven no-op, so the hot loop skips it entirely.
        self._autoscaled = not pool_is_static(cluster.autoscaler, self.pool,
                                              cluster.min_replicas,
                                              cluster.max_replicas)

    # ------------------------------------------------------------------ gauges
    def sample_gauges(self, now_ms: float) -> None:
        obs = self.obs
        pool = self.pool
        depth = 0
        busy = 0
        kv_bytes = 0.0
        kv_any = False
        for entry in pool.serving:
            depth += len(entry.queue)
            busy += entry.busy_slots(now_ms)
            if entry.kv is not None:
                kv_any = True
                kv_bytes += entry.kv.used_bytes()
        pool_name = self.fleet.obs_pool
        obs.gauge(now_ms, "queue_depth", depth, pool=pool_name)
        obs.gauge(now_ms, "busy_slots", busy, pool=pool_name)
        obs.gauge(now_ms, "active_replicas", len(pool.active), pool=pool_name)
        if kv_any:
            obs.gauge(now_ms, "kv_used_bytes", kv_bytes, pool=pool_name)
        runtime = self.tenant_runtime
        if runtime is not None:
            backlog = tenant_backlog(
                (sample.sequence_id for entry in pool.serving
                 for sample in entry.queue), runtime.tenant_of)
            for tenant, count in backlog.items():
                obs.gauge(now_ms, "tenant_backlog", count, pool=pool_name,
                          tenant=tenant)

    # --------------------------------------------------------- kernel contract
    def done(self, now_ms: float) -> bool:
        if self.next_arrival < self.num_sequences:
            return False
        for entry in self.pool.serving:
            if entry.queue or entry.busy_slots(now_ms):
                return False
        return True

    def next_external_ms(self, now_ms: float) -> Optional[float]:
        if self.next_arrival < self.num_sequences:
            return self.arrival_times[self.next_arrival]
        return None

    def on_event(self, event) -> None:
        kind = event.kind
        if kind == _SLOT_FREE:
            self.wake(event.payload)
        elif kind == _EVICT:
            _run_eviction(self, event.payload, self.clock.now_ms, _SLOT_FREE)
        elif kind == _CRASH:
            self._crash(event.payload, self.clock.now_ms)
        elif kind == _RECOVER:
            self._recover(self.clock.now_ms)
        else:  # _BOOT: provisioning completed, bring the replica online.
            pool = self.pool
            pool.boots.remove(event)
            cluster = self.cluster
            entry = self.fleet.add(cluster.engines[0],
                                   self.policy_factory(self.fleet.next_ordinal()),
                                   cluster.scale_out_profile, self.mean_tokens,
                                   self.clock.now_ms,
                                   kv=cluster._kv_for(cluster.engines[0],
                                                      cluster.scale_out_profile))
            pool.add(entry)

    # ------------------------------------------------------------------ faults
    def _crash(self, fault: FaultSpec, now: float) -> None:
        """Force-retire one decode replica; requeue queued sequences.

        In-flight streams are salvaged (their tokens were recorded at slot
        claim), queued sequences requeue to survivors through the balancer
        (rank order preserved under tenancy), and the crashed hardware
        boots back ``down_ms`` later.  The last active replica never
        crashes, so conservation holds by construction.
        """
        pool = self.pool
        if len(pool.active) < 2:
            return
        victim = min(pool.active, key=lambda e: e.replica_id)
        self.fleet.drain(victim, now)
        pool.draining += 1
        pool.refresh_active()
        orphans = victim.queue
        victim.queue = []
        self.crashes += 1
        self._crash_stock.append((victim.engine, victim.profile))
        self.events.push(now + fault.down_ms, _RECOVER, fault)
        self.wake(victim)  # retire once its salvaged streams finish
        if orphans:
            balancer = self.cluster.balancer
            handles = pool.handles
            active = pool.active
            runtime = self.tenant_runtime
            obs = self.obs
            for sample in orphans:
                index = int(balancer.choose(sample, handles, now))
                if not 0 <= index < len(active):
                    raise ValueError(f"balancer {balancer.name!r} chose "
                                     f"replica {index} of {len(active)}")
                entry = active[index]
                entry.queue.append(sample)
                if runtime is not None:
                    runtime.reposition(entry.queue)
                if obs.enabled:
                    obs.annotate(sample.sequence_id, requeued=True)
                self.wake(entry)
            self.requeued += len(orphans)

    def _recover(self, now: float) -> None:
        """Boot a replacement for the oldest still-unrecovered crash.

        The replacement starts with a fresh (empty) KV accountant — a crash
        loses the cache along with the queued work."""
        engine, profile = self._crash_stock.pop(0)
        entry = self.fleet.add(engine,
                               self.policy_factory(self.fleet.next_ordinal()),
                               profile, self.mean_tokens, now,
                               kv=self.cluster._kv_for(engine, profile))
        self.pool.add(entry)
        self.recoveries += 1

    # ------------------------------------------------------------------- pass
    def step(self, now: float) -> bool:
        cluster = self.cluster
        pool = self.pool
        active = pool.active
        handles = pool.handles
        arrivals = self.arrival_times
        num_sequences = self.num_sequences
        next_arrival = self.next_arrival

        # Phase 1: admit + dispatch every sequence that has arrived by now.
        admitted = 0
        if next_arrival < num_sequences \
                and arrivals[next_arrival] <= now + 1e-9:
            pending = self.pending
            balancer = cluster.balancer
            runtime = self.tenant_runtime
            obs = self.obs
            while (next_arrival < num_sequences
                   and arrivals[next_arrival] <= now + 1e-9):
                sample = pending[next_arrival]
                index = int(balancer.choose(sample, handles, now))
                if not 0 <= index < len(active):
                    raise ValueError(f"balancer {balancer.name!r} chose "
                                     f"replica {index} of {len(active)}")
                entry = active[index]
                entry.queue.append(sample)
                if runtime is not None:
                    runtime.reposition(entry.queue)
                if obs.enabled:
                    obs.admit(sample.sequence_id, sample.arrival_ms,
                              kind="sequence", pool=entry.obs_pool,
                              replica=entry.replica_id)
                    if runtime is not None:
                        obs.annotate(sample.sequence_id,
                                     tenant=runtime.tenant_of.get(
                                         sample.sequence_id))
                entry.dispatched += 1
                next_arrival += 1
                admitted += 1
                self.wake(entry)
            self.next_arrival = next_arrival
        if admitted:
            cluster.autoscaler.observe_admitted(admitted, now)

        # Phase 2: autoscaler decision on the global clock.
        if self._autoscaled:
            scale_pool(self, pool, cluster.autoscaler, now,
                       cluster.min_replicas, cluster.max_replicas, _BOOT)

        # Phase 3 per dirty replica: free decode slots claim the queue head
        # and run the stream decode (deadline shedding included).  A replica
        # with queued work and a free slot is always dirty: claims leave
        # either an empty queue or no free slot, slots only free through
        # their slot event, and admissions wake their target.
        progressed = False
        ttft = cluster.ttft_slo_ms
        runtime = self.tenant_runtime
        for entry in self.drain_dirty():
            if entry.claim_streams(now, ttft, runtime):
                progressed = True
            _arm_slots(self, entry, now, _SLOT_FREE)
            _schedule_eviction(self, entry, now, _EVICT)

        # Phase 4: drained replicas that have gone idle leave the fleet.
        pool.retire_idle(now)
        return progressed
