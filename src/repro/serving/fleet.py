"""Dynamic fleet state: the mutable replica membership of a cluster.

PR 1's ``ClusterPlatform`` froze its replica list at construction time.  This
module turns the member set into *fleet state* owned by a control plane, the
way large-scale serving frameworks treat service membership: replicas are
added, drained and retired **during** a run, and every consumer (the event
loop, balancers, the EE fleet controller, metrics rollups) reads the live
membership instead of a fixed list.

Three pieces:

:class:`ReplicaProfile`
    Heterogeneity descriptor for one replica — a ``speed`` multiplier on the
    base latency profile (an int8 or newer-generation accelerator replica runs
    ``speed``\\ × faster) and a ``cost_weight`` used when accounting
    replica-seconds (a faster machine usually bills more per second).

:class:`ReplicaHandle`
    Read-only view of one replica that load balancers and autoscalers may
    inspect (queue length, jobs in system, expected work left, profile).

:class:`FleetState`
    The live membership.  Replicas move through a three-state lifecycle::

        ACTIVE ──drain──▶ DRAINING ──(queue empty & idle)──▶ RETIRED

    Draining replicas finish their queued and in-flight work but receive no
    new dispatches; retired replicas keep their metrics so fleet rollups and
    the conservation invariant (every request answered exactly once) span
    every replica that ever served.  ``FleetState`` also records the
    fleet-size timeline and the replica-seconds consumed — the cost side of
    the autoscaling trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.recorder import NULL_RECORDER
from repro.serving.platform import BatchExecutorFn, ReplicaState, ServingPlatform

__all__ = ["ReplicaProfile", "ReplicaHandle", "ReplicaEntry", "BaseFleet",
           "FleetState", "ACTIVE", "DRAINING", "RETIRED"]

#: Replica lifecycle states.
ACTIVE = "active"
DRAINING = "draining"
RETIRED = "retired"


@dataclass(frozen=True)
class ReplicaProfile:
    """Speed and cost of one replica relative to the fleet's base hardware.

    ``speed`` scales serving time (2.0 = twice as fast, 0.5 = half speed);
    ``cost_weight`` scales the replica-seconds this replica bills (defaults
    to ``speed`` being free — set it to model faster-but-pricier machines).
    ``kv_capacity_bytes`` bounds the replica's KV-cache (generative decode
    replicas only; ``None`` inherits the fleet-wide capacity, which itself
    defaults to unbounded — no cache model at all).
    """

    speed: float = 1.0
    cost_weight: float = 1.0
    kv_capacity_bytes: Optional[float] = None

    def __post_init__(self) -> None:
        if not (self.speed > 0.0 and math.isfinite(self.speed)):
            raise ValueError(f"profile speed must be positive, got {self.speed}")
        if not (self.cost_weight > 0.0 and math.isfinite(self.cost_weight)):
            raise ValueError(f"profile cost_weight must be positive, "
                             f"got {self.cost_weight}")
        if self.kv_capacity_bytes is not None and not (
                self.kv_capacity_bytes > 0.0
                and math.isfinite(self.kv_capacity_bytes)):
            raise ValueError(f"profile kv_capacity_bytes must be positive and "
                             f"finite, got {self.kv_capacity_bytes}")

    @classmethod
    def coerce(cls, value: Union["ReplicaProfile", float, int, str]) -> "ReplicaProfile":
        """Accept a profile, a bare speed, or a ``"speed[:cost]"`` string."""
        if isinstance(value, ReplicaProfile):
            return value
        if isinstance(value, (int, float)):
            return cls(speed=float(value))
        text = str(value).strip()
        speed_text, _, cost_text = text.partition(":")
        try:
            speed = float(speed_text)
            cost = float(cost_text) if cost_text else 1.0
        except ValueError as exc:
            raise ValueError(f"invalid replica profile {value!r}; expected "
                             "'speed' or 'speed:cost' (e.g. '2.0' or '2.0:1.5')") from exc
        return cls(speed=speed, cost_weight=cost)

    @classmethod
    def parse_list(cls, text: str) -> Tuple["ReplicaProfile", ...]:
        """Parse a CLI-style comma-separated profile list, e.g. ``"2,2,0.5:0.6"``."""
        items = [item.strip() for item in str(text).split(",") if item.strip()]
        if not items:
            raise ValueError(f"replica profiles must name at least one replica, "
                             f"got {text!r}")
        return tuple(cls.coerce(item) for item in items)

    def describe(self) -> dict:
        described = {"speed": float(self.speed),
                     "cost_weight": float(self.cost_weight)}
        if self.kv_capacity_bytes is not None:
            described["kv_capacity_bytes"] = float(self.kv_capacity_bytes)
        return described


class ReplicaHandle:
    """Read-only view of one replica that balancers/autoscalers may inspect.

    This is the **resource view** every load balancer costs against — one
    uniform interface across the classification, generative-cluster and
    disaggregated platforms instead of per-platform ad-hoc attributes:

    * load signals — :meth:`queue_length`, :meth:`jobs_in_system`,
      :meth:`backlog_ms`, :meth:`work_left_ms`;
    * identity/shape — ``index``, ``replica_id``, ``profile``, ``weight``;
    * KV-cache signals — :meth:`kv_prefix_hit_tokens` and
      :meth:`kv_overflow_ms`, which default to 0 here (no cache model) and
      are overridden by generative decode handles when a
      :class:`~repro.generative.decoding.KVCacheAccountant` is attached.
    """

    def __init__(self, index: int, platform: ServingPlatform, state: ReplicaState,
                 profile: Optional[ReplicaProfile] = None,
                 replica_id: Optional[int] = None) -> None:
        self.index = index
        self.platform = platform
        self.state = state
        self.profile = profile if profile is not None else ReplicaProfile()
        self.replica_id = replica_id if replica_id is not None else index

    @property
    def weight(self) -> float:
        """Dispatch weight of this replica (its relative speed)."""
        return self.profile.speed

    def queue_length(self) -> int:
        return self.state.queue_length()

    def jobs_in_system(self, now_ms: float) -> int:
        """Waiting requests plus the batch currently on the accelerator.

        This is the classic JSQ load signal: a replica that just drained its
        queue into a 16-request batch is *not* empty — ignoring the in-flight
        batch would funnel every arrival to whichever replica dispatched last.
        """
        in_flight = self.state.serving_batch_size if not self.state.idle_at(now_ms) else 0
        return self.state.queue_length() + in_flight

    def backlog_ms(self, now_ms: float) -> float:
        """Remaining accelerator time of the in-flight batch."""
        return max(0.0, self.state.busy_until_ms - now_ms)

    def work_left_ms(self, now_ms: float) -> float:
        """Expected milliseconds until this replica would drain its queue.

        Queued requests are costed with the platform's latency model (batched
        at ``max_batch_size``); platforms without a profile fall back to one
        unit per request, which degrades gracefully to queue-length ordering.
        A heterogeneous replica's platform carries a speed-scaled latency
        profile (see :meth:`~repro.models.latency.LatencyProfile.scaled`), so
        the same milliseconds compare correctly across mixed-speed fleets.
        """
        work = self.backlog_ms(now_ms)
        queued = self.queue_length()
        if queued == 0:
            return work
        full = self.platform.max_batch_size
        per_batch = self.platform.predicted_batch_time_ms(min(queued, full))
        if per_batch is None:
            return work + float(queued) / self.profile.speed
        return work + per_batch * math.ceil(queued / full)

    # ------------------------------------------------------- KV-cache signals
    def kv_prefix_hit_tokens(self, item) -> int:
        """Shared-prefix tokens of ``item`` already resident in this
        replica's KV cache (0 without a cache model)."""
        return 0

    def kv_prefix_hit_ms(self, item) -> float:
        """Prefill milliseconds placing ``item`` here would *save* thanks to
        resident shared-prefix tokens (0 without a cache model)."""
        return 0.0

    def kv_overflow_ms(self, item, now_ms: float) -> float:
        """Expected recompute cost (ms) of the cache thrash placing ``item``
        here would cause (0 without a cache model)."""
        return 0.0


@dataclass
class ReplicaEntry:
    """One member of the fleet: platform, executor, profile and lifecycle."""

    replica_id: int
    platform: ServingPlatform
    executor: BatchExecutorFn
    profile: ReplicaProfile
    state: ReplicaState
    handle: ReplicaHandle
    status: str = ACTIVE
    added_ms: float = 0.0
    retired_ms: Optional[float] = None
    #: requests the balancer originally routed here (reroutes not included).
    dispatched: int = 0
    #: kernel-scheduler bookkeeping: dirty flag + armed policy wake-up event.
    _kdirty: bool = field(default=False, repr=False, compare=False)
    _wake_event: Optional[object] = field(default=None, repr=False, compare=False)

    def active_ms(self, end_ms: float) -> float:
        """Wall-clock time this replica was provisioned (added → retired)."""
        until = self.retired_ms if self.retired_ms is not None else end_ms
        return max(0.0, until - self.added_ms)

    def is_idle(self, now_ms: float) -> bool:
        """No queued work and the accelerator is free (retirement condition)."""
        return not self.state.queue and self.state.idle_at(now_ms)


class BaseFleet:
    """Shared lifecycle machinery of a dynamic replica membership.

    Entries may be any object carrying ``replica_id`` / ``profile`` /
    ``status`` / ``added_ms`` / ``retired_ms`` plus ``active_ms(end_ms)`` and
    ``is_idle(now_ms)``; the classification fleet (:class:`FleetState`) and
    the generative fleet (:mod:`repro.serving.generative_cluster`) both build
    on this so the ACTIVE → DRAINING → RETIRED semantics, the fleet-size
    timeline and the replica-seconds accounting are defined exactly once.
    """

    def __init__(self) -> None:
        self.entries: List = []
        self._next_id = 0
        #: (time_ms, active_count) — recorded whenever membership changes.
        self.timeline: List[Tuple[float, int]] = []
        #: Observability recorder + the pool tag stamped on fleet gauges.
        #: Installed by the runner; the default no-op keeps runs untouched.
        self.obs = NULL_RECORDER
        self.obs_pool = "serve"

    def next_ordinal(self) -> int:
        """Ordinal the next-added replica will receive (stable, monotonic)."""
        return self._next_id

    # ------------------------------------------------------------------ views
    def active(self) -> List:
        return [e for e in self.entries if e.status == ACTIVE]

    def serving(self) -> List:
        """Members that still hold or may produce work (active + draining)."""
        return [e for e in self.entries if e.status != RETIRED]

    def num_active(self) -> int:
        return sum(1 for e in self.entries if e.status == ACTIVE)

    # -------------------------------------------------------------- lifecycle
    def _register(self, entry, now_ms: float):
        """Record a freshly built entry as a live ACTIVE member."""
        self._next_id += 1
        self.entries.append(entry)
        self._mark(now_ms)
        return entry

    def drain(self, entry, now_ms: float) -> None:
        """Stop dispatching to ``entry``; it finishes queued/in-flight work."""
        if entry.status == ACTIVE:
            entry.status = DRAINING
            self._mark(now_ms)

    def retire_idle(self, now_ms: float) -> None:
        """Retire draining replicas that have finished all of their work."""
        for entry in self.entries:
            if entry.status == DRAINING and entry.is_idle(now_ms):
                entry.status = RETIRED
                entry.retired_ms = now_ms

    def finalize(self, end_ms: float) -> None:
        """Close the books at the end of a run (retire every member)."""
        for entry in self.entries:
            if entry.status != RETIRED:
                entry.status = RETIRED
                entry.retired_ms = end_ms

    # -------------------------------------------------------------- accounting
    def replica_seconds(self, end_ms: float) -> float:
        """Cost-weighted replica-seconds consumed by the whole fleet."""
        return sum(e.profile.cost_weight * e.active_ms(end_ms)
                   for e in self.entries) / 1000.0

    def active_replica_ms(self, end_ms: float) -> float:
        """Unweighted provisioned milliseconds (for utilization rollups)."""
        return sum(e.active_ms(end_ms) for e in self.entries)

    def _mark(self, now_ms: float) -> None:
        count = self.num_active()
        if self.obs.enabled:
            # Event-driven fleet-size series: a point at every membership
            # transition (the gauge superset of the ad-hoc ``timeline``).
            self.obs.gauge(now_ms, "fleet_size", count, pool=self.obs_pool)
        if self.timeline and abs(self.timeline[-1][0] - now_ms) <= 1e-9:
            self.timeline[-1] = (now_ms, count)
            return
        if self.timeline and self.timeline[-1][1] == count:
            return
        self.timeline.append((now_ms, count))


class FleetState(BaseFleet):
    """Live replica membership with an add / drain / retire lifecycle.

    The cluster event loop owns one of these per run.  Balancers only ever see
    the ACTIVE members; DRAINING members keep serving their queues; RETIRED
    members are kept for metrics so rollups span the whole run.
    """

    def add(self, platform: ServingPlatform, executor: BatchExecutorFn,
            profile: ReplicaProfile, now_ms: float) -> ReplicaEntry:
        """Bring a new replica online (dispatchable from the next arrival)."""
        state = platform.new_state()
        # Every add path (initial fleet, autoscale boot, crash recovery)
        # funnels through here, so span hooks inherit the fleet's recorder
        # and the replica's stable id without per-call-site wiring.
        platform.obs = self.obs
        state.obs_replica = self._next_id
        handle = ReplicaHandle(index=len(self.entries), platform=platform,
                               state=state, profile=profile,
                               replica_id=self._next_id)
        entry = ReplicaEntry(replica_id=self._next_id, platform=platform,
                             executor=executor, profile=profile, state=state,
                             handle=handle, added_ms=now_ms)
        return self._register(entry, now_ms)
