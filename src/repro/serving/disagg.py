"""Prefill/decode disaggregated generative serving with independent pools.

Production LLM fleets split the two generative phases onto separate machine
pools (DistServe, Splitwise): **prefill** is compute-bound and batch-friendly
— a prompt's tokens are processed in parallel chunks — while **decode** is
memory-bound and TPT-critical — one token per step per stream.  Running both
on one replica makes them interfere: a prompt's prefill chunks steal compute
from every decode stream in flight, so time-to-first-token and decode cadence
degrade together under prompt-heavy load.

:class:`DisaggregatedPlatform` runs two :class:`~repro.serving.fleet.BaseFleet`
pools on one shared global clock:

* a **prefill pool** of chunk-batch replicas — each takes up to
  ``prefill_batch`` queued prompts and runs their chunks back to back
  (:meth:`~repro.generative.decoding.PrefillModel.batch_prefill_ms`);
* a **decode pool** of the existing continuous-batching early-exit replicas
  (:class:`~repro.serving.generative_cluster.GenerativeReplicaEntry` — the
  stream decode is *shared code* with the monolithic cluster);
* a **handoff queue** between them: a prefilled sequence becomes eligible for
  decode dispatch only after its KV cache has been shipped across the
  interconnect (bytes grow with prompt tokens × layer depth, see
  :meth:`~repro.generative.decoding.PrefillModel.transfer_ms`).

Each pool has its *own* balancer and its *own* autoscaler evaluated on the
global clock, so the two pools size independently: the prefill scaler sees
queued prompt chunks (prompt-token pressure), the decode scaler sees
outstanding decode work — under a diurnal prompt-heavy cycle the pools grow
and shrink on different schedules, which a monolithic fleet cannot express.

:class:`DisaggregatedMetrics` extends the generative cluster rollups (whose
base fields describe the decode pool) with the prefill pool's fleet timeline
/ replica-seconds and the per-sequence prefill and KV-transfer delays; the
aggregate token stream's TTFT is inclusive of queueing + prefill + transfer
because each sequence's recorded queueing delay spans arrival → first decode
step.
"""

from __future__ import annotations

import copy
import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.faults import FaultSchedule, FaultSpec, coerce_faults
from repro.generative.decoding import (KVCacheAccountant, PrefillModel,
                                       kv_bytes_per_token)
from repro.generative.sequences import SequenceSample
from repro.obs.recorder import NULL_RECORDER
from repro.serving.autoscaler import Autoscaler, build_autoscaler
from repro.serving.cluster import LoadBalancer, build_balancer
from repro.serving.fleet import ACTIVE, BaseFleet, ReplicaProfile
from repro.serving.generative_cluster import (GenerativeClusterMetrics,
                                              GenerativeFleetState,
                                              PolicyFactory, _arm_slots,
                                              _run_eviction,
                                              _schedule_eviction)
from repro.serving.hf_pipelines import ContinuousBatchingEngine
from repro.serving.kernel import (PoolState, SimPlatform, pool_is_static,
                                  scale_pool)
from repro.tenancy import (TenancyConfig, TenantRuntime, build_sequence_runtime,
                           coerce_tenancy, sequence_rollups, tenant_backlog)

__all__ = ["PrefillReplicaHandle", "PrefillReplicaEntry", "PrefillFleetState",
           "DisaggregatedMetrics", "DisaggregatedPlatform"]


class _PrefillView:
    """Platform-shaped shim over a prefill replica for autoscaler policies.

    The predictive autoscaler reads capacity as ``max_batch_size`` requests
    per ``predicted_batch_time_ms``; for a prefill replica that is one
    chunk-batch of prompts at the workload's mean prompt length.
    """

    def __init__(self, entry: "PrefillReplicaEntry") -> None:
        self._entry = entry

    @property
    def max_batch_size(self) -> int:
        return self._entry.prefill_batch

    def predicted_batch_time_ms(self, batch_size: int) -> float:
        entry = self._entry
        tokens = int(round(batch_size * max(entry.mean_prompt_tokens, 1.0)))
        return entry.model.batch_prefill_ms(tokens) / entry.profile.speed


class PrefillReplicaHandle:
    """Read-only prefill-replica view for load balancers and autoscalers.

    Load is expressed in *pending prefill chunks* — queued prompt tokens
    divided into chunk units, plus the chunk-batch on the accelerator — so
    JSQ balances by prompt length rather than prompt count, and the reactive
    autoscaler's "jobs in system" watermark scales with queued prompt tokens,
    which is exactly the signal the prefill pool must grow on.
    """

    def __init__(self, entry: "PrefillReplicaEntry") -> None:
        self._entry = entry
        self.index = 0
        self.platform = _PrefillView(entry)

    @property
    def replica_id(self) -> int:
        return self._entry.replica_id

    @property
    def profile(self) -> ReplicaProfile:
        return self._entry.profile

    @property
    def weight(self) -> float:
        """Dispatch weight of this replica (its relative speed)."""
        return self._entry.profile.speed

    def queue_length(self) -> int:
        return len(self._entry.queue)

    def jobs_in_system(self, now_ms: float) -> float:
        """Pending prefill chunks: queued prompt chunks + the in-flight batch."""
        entry = self._entry
        chunks = sum(entry.model.num_chunks(s.prompt_tokens)
                     for s in entry.queue)
        if entry.busy_until_ms > now_ms + 1e-9:
            chunks += (entry.busy_until_ms - now_ms) / max(
                entry.model.chunk_time_ms() / entry.profile.speed, 1e-9)
        return float(chunks)

    def backlog_ms(self, now_ms: float) -> float:
        """Remaining accelerator time of the in-flight chunk-batch."""
        return max(0.0, self._entry.busy_until_ms - now_ms)

    def work_left_ms(self, now_ms: float) -> float:
        """Expected milliseconds until this replica would drain its queue."""
        entry = self._entry
        work = self.backlog_ms(now_ms)
        queued_tokens = sum(s.prompt_tokens for s in entry.queue)
        if queued_tokens <= 0:
            return work
        return work + entry.model.batch_prefill_ms(queued_tokens) / entry.profile.speed

    # ------------------------------------------------------------- KV signals
    # Prefill replicas hold no decode-side KV residency, so the cache
    # signals read 0 and the KV-aware policies degrade to least-work here.
    def kv_prefix_hit_tokens(self, item) -> int:
        return 0

    def kv_prefix_hit_ms(self, item) -> float:
        return 0.0

    def kv_overflow_ms(self, item, now_ms: float) -> float:
        return 0.0


@dataclass
class PrefillReplicaEntry:
    """One prefill replica: chunk-batch processor with fleet lifecycle."""

    replica_id: int
    model: PrefillModel
    profile: ReplicaProfile
    prefill_batch: int
    mean_prompt_tokens: float
    queue: List[SequenceSample] = field(default_factory=list)
    #: the chunk-batch on the accelerator (empty when free).
    in_flight: List[SequenceSample] = field(default_factory=list)
    busy_until_ms: float = -np.inf
    handle: Optional[PrefillReplicaHandle] = None
    status: str = ACTIVE
    added_ms: float = 0.0
    retired_ms: Optional[float] = None
    #: sequences the balancer routed here.
    dispatched: int = 0
    #: sequences / prompt tokens this replica finished prefilling.
    prefilled: int = 0
    prefilled_tokens: int = 0
    last_completion_ms: float = -np.inf
    #: kernel-scheduler bookkeeping: dirty flag for the prefill dirty list.
    _kdirty: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.handle is None:
            self.handle = PrefillReplicaHandle(self)

    def is_free(self, now_ms: float) -> bool:
        return not self.in_flight and self.busy_until_ms <= now_ms + 1e-9

    def is_idle(self, now_ms: float) -> bool:
        """No queued prompts and nothing on the accelerator (retirement)."""
        return not self.queue and self.is_free(now_ms)

    def active_ms(self, end_ms: float) -> float:
        """Wall-clock time this replica was provisioned (added → retired)."""
        until = self.retired_ms if self.retired_ms is not None else end_ms
        return max(0.0, until - self.added_ms)


class PrefillFleetState(BaseFleet):
    """Dynamic prefill-replica membership (ACTIVE → DRAINING → RETIRED)."""

    def add(self, model: PrefillModel, profile: ReplicaProfile,
            prefill_batch: int, mean_prompt_tokens: float,
            now_ms: float) -> PrefillReplicaEntry:
        entry = PrefillReplicaEntry(replica_id=self._next_id, model=model,
                                    profile=profile,
                                    prefill_batch=prefill_batch,
                                    mean_prompt_tokens=mean_prompt_tokens,
                                    added_ms=now_ms)
        return self._register(entry, now_ms)


@dataclass
class DisaggregatedMetrics(GenerativeClusterMetrics):
    """Two-pool rollup of one disaggregated run.

    The inherited :class:`GenerativeClusterMetrics` fields describe the
    **decode pool** (that is where tokens are produced); the ``prefill_*``
    fields describe the prefill pool, and the per-sequence delay maps record
    the pipeline stages every sequence crossed: ``prefill_delays_ms`` spans
    arrival → prefill completion (queueing included), ``transfer_delays_ms``
    is the KV-cache shipping time prefill → decode replica.
    """

    prefill_dispatch_counts: List[int] = field(default_factory=list)
    prefill_counts: List[int] = field(default_factory=list)
    #: prompt tokens prefilled per replica, aligned with ``prefill_counts``.
    prefill_token_counts: List[int] = field(default_factory=list)
    prefill_fleet_timeline: List[Tuple[float, int]] = field(default_factory=list)
    prefill_replica_seconds: float = 0.0
    prefill_active_ms: float = 0.0
    prefill_uptimes_ms: List[float] = field(default_factory=list)
    prefill_delays_ms: Dict[int, float] = field(default_factory=dict)
    transfer_delays_ms: Dict[int, float] = field(default_factory=dict)

    def num_prefill_replicas(self) -> int:
        return len(self.prefill_uptimes_ms)

    def prefill_peak_replicas(self) -> int:
        """Largest number of simultaneously active prefill replicas."""
        if not self.prefill_fleet_timeline:
            return self.num_prefill_replicas()
        return max(count for _, count in self.prefill_fleet_timeline)

    @staticmethod
    def _finite_mean(values) -> float:
        """Mean over the finite entries only (empty / all-NaN -> 0.0).

        Mirrors :func:`repro.utils.stats.summarize_latencies`: a sentinel
        NaN/inf recorded for a sequence that never completed its stage must
        not poison the summary that feeds ``RunReport.to_json()``.
        """
        arr = np.asarray(list(values), dtype=float)
        arr = arr[np.isfinite(arr)]
        if arr.size == 0:
            return 0.0
        return float(arr.mean())

    def mean_prefill_delay_ms(self) -> float:
        return self._finite_mean(self.prefill_delays_ms.values())

    def mean_transfer_ms(self) -> float:
        return self._finite_mean(self.transfer_delays_ms.values())

    def summary(self) -> Dict[str, float]:
        data = super().summary()
        data.update({
            "prefill_replicas": float(self.num_prefill_replicas()),
            "prefill_peak_replicas": float(self.prefill_peak_replicas()),
            "prefill_replica_seconds": float(self.prefill_replica_seconds),
            "prefill_delay_mean_ms": self.mean_prefill_delay_ms(),
            "transfer_ms_mean": self.mean_transfer_ms(),
        })
        return data


class DisaggregatedPlatform:
    """Two independently balanced and autoscaled pools on one global clock.

    Parameters
    ----------
    prefill_model:
        Chunked-prefill / KV-transfer cost model shared by every prefill
        replica (including ones the prefill autoscaler boots mid-run).
    decode_engines:
        Per-initial-decode-replica :class:`ContinuousBatchingEngine`.  Decode
        engines should carry no in-slot prefill model — prompts reaching the
        decode pool are already prefilled.
    prefill_replicas / prefill_batch:
        Initial prefill pool size and the maximum prompts per chunk-batch.
    prefill_balancer / decode_balancer / seed:
        Per-pool dispatch policies; stochastic balancers draw from seeds
        ``seed`` (prefill) and ``seed + 1`` (decode) so repeated ``run()``
        calls on one platform object stay bit-identical.
    prefill_autoscaler / decode_autoscaler (+ per-pool min/max):
        Independent elasticity.  The prefill scaler reads queued prompt
        chunks, the decode scaler outstanding decode work, so the pools size
        independently under shifting prompt/decode pressure.
    prefill_profiles / decode_profiles:
        Optional per-initial-replica heterogeneity, as in the clusters.
    ttft_slo_ms:
        Optional deadline shedding: a sequence whose wait already exceeds
        the TTFT SLO when a decode slot frees up is shed (counted per decode
        replica in ``shed_sequence_ids``), mirroring the classification
        fleet's drop path at sequence granularity.
    tenancy:
        Optional multi-tenant config (spec string, :class:`TenancyConfig` or
        tenant list).  Sequences are tagged and ranked at ``run()`` time;
        both pools' queues are kept rank-sorted, so weighted-fair / strict
        priority shapes prefill order and decode slot claims alike.
        Per-tenant TTFT-SLO and exit-policy overrides apply in the decode
        pool's slot-claim loop.
    faults:
        Optional crash/recovery schedule (spec string, :class:`FaultSpec`
        or :class:`FaultSchedule`).  Each fault names its target pool: a
        ``pool="prefill"`` crash force-retires a prefill replica (its
        in-flight chunk-batch is salvaged, queued prompts requeue through
        the prefill balancer), a ``pool="decode"`` crash retires a decode
        replica (in-flight streams salvage, queued sequences requeue).
        The crashed hardware boots back ``down_ms`` later.
    kv_capacity:
        Pool-default per-decode-replica KV-cache budget in bytes (a decode
        profile's ``kv_capacity_bytes`` overrides it).  ``None`` disables
        the cache model; with a budget, each decode replica runs a
        :class:`~repro.generative.decoding.KVCacheAccountant` — residency,
        prefix hits, LRU eviction as a kernel event, recompute charged as a
        decode-slot extension — priced against the platform's prefill model.
    """

    def __init__(self, prefill_model: PrefillModel,
                 decode_engines: Sequence[ContinuousBatchingEngine],
                 prefill_replicas: int = 1,
                 prefill_batch: int = 4,
                 prefill_balancer: Union[str, LoadBalancer] = "round_robin",
                 decode_balancer: Union[str, LoadBalancer] = "round_robin",
                 seed: int = 0,
                 prefill_profiles: Optional[Sequence] = None,
                 decode_profiles: Optional[Sequence] = None,
                 prefill_autoscaler: Union[str, Autoscaler, None] = "none",
                 decode_autoscaler: Union[str, Autoscaler, None] = "none",
                 prefill_min_replicas: Optional[int] = None,
                 prefill_max_replicas: Optional[int] = None,
                 decode_min_replicas: Optional[int] = None,
                 decode_max_replicas: Optional[int] = None,
                 ttft_slo_ms: Optional[float] = None,
                 tenancy: Union[None, str, TenancyConfig] = None,
                 faults: Union[None, str, FaultSpec, FaultSchedule] = None,
                 kv_capacity: Optional[float] = None,
                 obs=None) -> None:
        self.prefill_model = prefill_model
        self.decode_engines = list(decode_engines)
        if not self.decode_engines:
            raise ValueError("a disaggregated platform needs at least one "
                             "decode replica")
        #: Observability recorder shared by both pools (no-op when unset).
        self.obs = obs if obs is not None else NULL_RECORDER
        #: Kernel schedule counters of the most recent ``run()``.
        self.last_kernel_stats = None
        if int(prefill_replicas) < 1:
            raise ValueError(f"prefill_replicas must be >= 1, "
                             f"got {prefill_replicas}")
        if int(prefill_batch) < 1:
            raise ValueError(f"prefill_batch must be >= 1, got {prefill_batch}")
        if ttft_slo_ms is not None and ttft_slo_ms <= 0:
            raise ValueError(f"ttft_slo_ms must be positive, got {ttft_slo_ms}")
        self.num_prefill = int(prefill_replicas)
        self.prefill_batch = int(prefill_batch)
        self.ttft_slo_ms = None if ttft_slo_ms is None else float(ttft_slo_ms)
        if kv_capacity is not None and not (
                float(kv_capacity) > 0.0 and np.isfinite(kv_capacity)):
            raise ValueError(f"kv_capacity must be positive and finite bytes, "
                             f"got {kv_capacity}")
        self.kv_capacity = None if kv_capacity is None else float(kv_capacity)
        self.seed = int(seed)
        self.tenancy = coerce_tenancy(tenancy)
        self.faults = coerce_faults(faults)

        self.prefill_balancer = build_balancer(prefill_balancer, seed=seed,
                                               kind="generative")
        self.decode_balancer = build_balancer(decode_balancer, seed=seed + 1,
                                              kind="generative")
        self.prefill_autoscaler = build_autoscaler(prefill_autoscaler)
        self.decode_autoscaler = build_autoscaler(decode_autoscaler)
        # One *instance* passed for both pools (e.g. a fleet-wide default
        # threaded down from ClusterSpec) must not be aliased: a shared
        # balancer would run one dispatch cursor/RNG stream across pools and
        # a shared autoscaler would corrupt its cooldown/EWMA state by
        # observing both pools' admissions.  Clone the decode-side copy.
        if self.decode_balancer is self.prefill_balancer:
            self.decode_balancer = copy.deepcopy(self.prefill_balancer)
        if self.decode_autoscaler is self.prefill_autoscaler:
            self.decode_autoscaler = copy.deepcopy(self.prefill_autoscaler)

        self.prefill_profiles = self._coerce_profiles(
            prefill_profiles, self.num_prefill, "prefill")
        self.decode_profiles = self._coerce_profiles(
            decode_profiles, len(self.decode_engines), "decode")

        self.prefill_min, self.prefill_max = self._pool_band(
            "prefill", self.num_prefill, prefill_min_replicas,
            prefill_max_replicas)
        self.decode_min, self.decode_max = self._pool_band(
            "decode", len(self.decode_engines), decode_min_replicas,
            decode_max_replicas)

    @staticmethod
    def _coerce_profiles(profiles, count: int, pool: str) -> List[ReplicaProfile]:
        if profiles is None:
            return [ReplicaProfile() for _ in range(count)]
        coerced = [ReplicaProfile.coerce(p) for p in profiles]
        if len(coerced) != count:
            raise ValueError(f"got {len(coerced)} {pool} replica profiles "
                             f"for {count} replicas")
        return coerced

    @staticmethod
    def _pool_band(pool: str, initial: int, lower: Optional[int],
                   upper: Optional[int]) -> Tuple[int, int]:
        low = initial if lower is None else int(lower)
        high = initial if upper is None else int(upper)
        if not 1 <= low <= initial:
            raise ValueError(f"{pool}_min_replicas must be in [1, {initial}] "
                             f"(the initial pool size), got {low}")
        if high < initial:
            raise ValueError(f"{pool}_max_replicas must be >= the initial "
                             f"pool size ({initial}), got {high}")
        return low, high

    @property
    def num_decode(self) -> int:
        """Size of the initial decode pool."""
        return len(self.decode_engines)

    def _kv_for(self, engine: ContinuousBatchingEngine,
                profile: ReplicaProfile) -> Optional[KVCacheAccountant]:
        """Fresh accountant for one decode replica (``None`` = cache off).
        Recompute is a re-prefill, so it is priced at the platform's
        chunked-prefill rate scaled by the replica's speed."""
        capacity = profile.kv_capacity_bytes
        if capacity is None:
            capacity = self.kv_capacity
        if capacity is None:
            return None
        prefill = self.prefill_model
        recompute = prefill.chunk_time_ms() / prefill.tokens_per_chunk \
            / profile.speed
        return KVCacheAccountant(capacity,
                                 kv_bytes_per_token(engine.timing.spec),
                                 recompute_ms_per_token=recompute)

    # --------------------------------------------------------------- main loop
    def run(self, workload, policy_factory: PolicyFactory) -> DisaggregatedMetrics:
        """Serve every sequence through prefill → handoff → decode.

        ``policy_factory(ordinal)`` supplies the token-exit policy of each
        *decode* replica (prefill replicas produce no tokens).  All mutable
        state lives in run-local fleets, so repeated calls on one platform
        object are bit-identical.
        """
        self.prefill_balancer.reset()
        self.decode_balancer.reset()
        self.prefill_autoscaler.reset()
        self.decode_autoscaler.reset()
        self.prefill_autoscaler.set_bounds(self.prefill_min, self.prefill_max)
        self.decode_autoscaler.set_bounds(self.decode_min, self.decode_max)

        pending = sorted(workload.sequences,
                         key=lambda s: (s.arrival_ms, s.sequence_id))
        tenant_runtime = build_sequence_runtime(pending, self.tenancy, self.seed)
        num_sequences = len(pending)
        start = pending[0].arrival_ms if pending else 0.0
        mean_tokens = workload.mean_output_length() or 1.0
        mean_prompt = getattr(workload, "mean_prompt_length", lambda: 0.0)() or 1.0

        prefill_fleet = PrefillFleetState()
        prefill_fleet.obs = self.obs
        prefill_fleet.obs_pool = "prefill"
        for profile in self.prefill_profiles:
            prefill_fleet.add(self.prefill_model, profile, self.prefill_batch,
                              mean_prompt, start)
        decode_fleet = GenerativeFleetState()
        decode_fleet.obs = self.obs
        decode_fleet.obs_pool = "decode"
        for engine, profile in zip(self.decode_engines, self.decode_profiles):
            decode_fleet.add(engine, policy_factory(decode_fleet.next_ordinal()),
                             profile, mean_tokens, start,
                             kv=self._kv_for(engine, profile))

        if num_sequences == 0:
            return self._collect(prefill_fleet, decode_fleet, {}, {}, start, start)

        runner = _DisaggRun(self, pending, policy_factory, prefill_fleet,
                            decode_fleet, mean_tokens, mean_prompt, start,
                            tenant_runtime=tenant_runtime, faults=self.faults)
        runner.drive()
        self.last_kernel_stats = runner.events.stats()

        end = max((e.last_completion_ms for e in decode_fleet.entries
                   if np.isfinite(e.last_completion_ms)), default=start)
        metrics = self._collect(prefill_fleet, decode_fleet,
                                runner.prefill_delays, runner.transfer_delays,
                                start, end)
        metrics.crashes = runner.crashes
        metrics.recoveries = runner.recoveries
        metrics.requeued = runner.requeued
        metrics.kernel_stats = self.last_kernel_stats
        if tenant_runtime is not None:
            metrics.tenant_rollups = sequence_rollups(metrics.aggregate(),
                                                      tenant_runtime)
        return metrics

    # ----------------------------------------------------------- scale-out add
    def _add_prefill(self, fleet: PrefillFleetState, policy_factory,
                     mean_tokens: float, mean_prompt: float,
                     now_ms: float) -> PrefillReplicaEntry:
        # Scaled-out replicas cycle the configured profile band so an
        # elastic heterogeneous pool keeps its configured speed mix instead
        # of silently booting base-speed hardware.
        profiles = self.prefill_profiles
        profile = profiles[fleet.next_ordinal() % len(profiles)]
        return fleet.add(self.prefill_model, profile, self.prefill_batch,
                         mean_prompt, now_ms)

    def _add_decode(self, fleet: GenerativeFleetState, policy_factory,
                    mean_tokens: float, mean_prompt: float, now_ms: float):
        profiles = self.decode_profiles
        profile = profiles[fleet.next_ordinal() % len(profiles)]
        return fleet.add(self.decode_engines[0],
                         policy_factory(fleet.next_ordinal()), profile,
                         mean_tokens, now_ms,
                         kv=self._kv_for(self.decode_engines[0], profile))

    # ------------------------------------------------------------------ collect
    def _collect(self, prefill_fleet: PrefillFleetState,
                 decode_fleet: GenerativeFleetState,
                 prefill_delays: Dict[int, float],
                 transfer_delays: Dict[int, float],
                 start_ms: float, end_ms: float) -> DisaggregatedMetrics:
        prefill_end = max(end_ms, max(
            (e.last_completion_ms for e in prefill_fleet.entries
             if np.isfinite(e.last_completion_ms)), default=start_ms))
        prefill_fleet.finalize(prefill_end)
        decode_fleet.finalize(end_ms)
        for entry in decode_fleet.entries:
            if entry.metrics.tokens:
                entry.metrics.makespan_ms = max(
                    entry.last_completion_ms - start_ms, 1e-9)
            if entry.kv is not None:
                m = entry.metrics
                m.kv_enabled = True
                m.kv_hit_tokens = entry.kv.hit_tokens
                m.kv_miss_tokens = entry.kv.miss_tokens
                m.kv_evictions = entry.kv.evictions
                m.kv_evicted_tokens = entry.kv.evicted_tokens
                m.kv_recompute_tokens = entry.kv.recompute_tokens
        decoded_anything = any(e.metrics.tokens for e in decode_fleet.entries)
        makespan = max(end_ms - start_ms, 1e-9) if decoded_anything else 0.0
        return DisaggregatedMetrics(
            replicas=[e.metrics for e in decode_fleet.entries],
            dispatch_counts=[e.dispatched for e in decode_fleet.entries],
            makespan_ms=makespan,
            fleet_timeline=list(decode_fleet.timeline),
            replica_seconds=decode_fleet.replica_seconds(end_ms),
            replica_active_ms=decode_fleet.active_replica_ms(end_ms),
            replica_uptimes_ms=[e.active_ms(end_ms)
                                for e in decode_fleet.entries],
            prefill_dispatch_counts=[e.dispatched
                                     for e in prefill_fleet.entries],
            prefill_counts=[e.prefilled for e in prefill_fleet.entries],
            prefill_token_counts=[e.prefilled_tokens
                                  for e in prefill_fleet.entries],
            prefill_fleet_timeline=list(prefill_fleet.timeline),
            prefill_replica_seconds=prefill_fleet.replica_seconds(prefill_end),
            prefill_active_ms=prefill_fleet.active_replica_ms(prefill_end),
            prefill_uptimes_ms=[e.active_ms(prefill_end)
                                for e in prefill_fleet.entries],
            prefill_delays_ms=dict(prefill_delays),
            transfer_delays_ms=dict(transfer_delays),
        )


# --------------------------------------------------------------------- kernel
#: Event kinds for the disaggregated runner (two pools share one heap).
#: Crash/recover pairs exist per pool — a fault names its target pool.
(_PBOOT, _DBOOT, _PREFILL, _DSLOT,
 _PCRASH, _PRECOVER, _DCRASH, _DRECOVER, _DEVICT) = range(9)


class _DisaggRun(SimPlatform):
    """Kernel-scheduled port of the disaggregated pass/advance loop.

    Same phase order per pass as the monolithic runners, duplicated per
    pool: admit arrivals into prefill, scale the prefill pool, progress
    prefill chunk-batches (completions feed the handoff heap), dispatch due
    handoffs into decode, scale the decode pool, run the decode slot loop,
    retire idle drained replicas in both pools.  Each pool keeps its own
    dirty list so a pass touches only the replicas whose state changed;
    prefill completions and decode slot frees live on the shared heap, the
    arrival cursor and the handoff head are the external candidates.
    """

    def __init__(self, platform: DisaggregatedPlatform,
                 pending: List[SequenceSample], policy_factory: PolicyFactory,
                 prefill_fleet: PrefillFleetState,
                 decode_fleet: GenerativeFleetState, mean_tokens: float,
                 mean_prompt: float, start_ms: float,
                 tenant_runtime: Optional[TenantRuntime] = None,
                 faults: Optional[FaultSchedule] = None) -> None:
        super().__init__(start_ms)
        self.install_obs(platform.obs, start_ms)
        self.platform = platform
        self.pending = pending
        self.arrival_times = [s.arrival_ms for s in pending]
        self.num_sequences = len(pending)
        self.next_arrival = 0
        self.policy_factory = policy_factory
        self.mean_tokens = mean_tokens
        self.mean_prompt = mean_prompt
        self.ppool = PoolState(prefill_fleet, obs_name="prefill")
        self.dpool = PoolState(decode_fleet, obs_name="decode")
        #: fixed-size pools in band: the per-pass autoscaler consults are
        #: proven no-ops, so the hot loop skips them entirely.
        self._pautoscaled = not pool_is_static(platform.prefill_autoscaler,
                                               self.ppool, platform.prefill_min,
                                               platform.prefill_max)
        self._dautoscaled = not pool_is_static(platform.decode_autoscaler,
                                               self.dpool, platform.decode_min,
                                               platform.decode_max)
        self._pdirty: List[Any] = []
        #: (ready_ms, sequence_id, sample) — KV transfer complete, decodeable.
        self.handoff: List[Tuple[float, int, SequenceSample]] = []
        self.prefill_delays: Dict[int, float] = {}
        self.transfer_delays: Dict[int, float] = {}
        self.tenant_runtime = tenant_runtime
        #: fault injection counters + crashed hardware awaiting recovery,
        #: kept per pool (a prefill replica is rebuilt from its profile; a
        #: decode replica keeps its engine).
        self.crashes = 0
        self.recoveries = 0
        self.requeued = 0
        self._pcrash_stock: List[ReplicaProfile] = []
        self._dcrash_stock: List[Tuple[ContinuousBatchingEngine,
                                       ReplicaProfile]] = []
        if faults is not None:
            for fault in faults:
                # A crash scheduled before the first arrival fires with it.
                kind = _PCRASH if fault.pool == "prefill" else _DCRASH
                self.events.push(max(fault.crash_ms, start_ms), kind, fault)

    # ------------------------------------------------------------------ gauges
    def sample_gauges(self, now_ms: float) -> None:
        obs = self.obs
        pdepth = 0
        pbusy = 0
        for entry in self.ppool.serving:
            pdepth += len(entry.queue)
            if not entry.is_free(now_ms):
                pbusy += 1
        obs.gauge(now_ms, "queue_depth", pdepth, pool="prefill")
        obs.gauge(now_ms, "busy_replicas", pbusy, pool="prefill")
        obs.gauge(now_ms, "active_replicas", len(self.ppool.active),
                  pool="prefill")
        ddepth = 0
        dbusy = 0
        kv_bytes = 0.0
        kv_any = False
        for entry in self.dpool.serving:
            ddepth += len(entry.queue)
            dbusy += entry.busy_slots(now_ms)
            if entry.kv is not None:
                kv_any = True
                kv_bytes += entry.kv.used_bytes()
        obs.gauge(now_ms, "queue_depth", ddepth, pool="decode")
        obs.gauge(now_ms, "busy_slots", dbusy, pool="decode")
        obs.gauge(now_ms, "active_replicas", len(self.dpool.active),
                  pool="decode")
        if kv_any:
            obs.gauge(now_ms, "kv_used_bytes", kv_bytes, pool="decode")
        obs.gauge(now_ms, "handoff_pending", len(self.handoff), pool="decode")
        runtime = self.tenant_runtime
        if runtime is not None:
            backlog = tenant_backlog(
                (sample.sequence_id for pool in (self.ppool, self.dpool)
                 for entry in pool.serving for sample in entry.queue),
                runtime.tenant_of)
            for tenant, count in backlog.items():
                obs.gauge(now_ms, "tenant_backlog", count, tenant=tenant)

    # --------------------------------------------------------------- plumbing
    def _wake_prefill(self, entry: PrefillReplicaEntry) -> None:
        if not entry._kdirty:
            entry._kdirty = True
            self._pdirty.append(entry)

    def done(self, now_ms: float) -> bool:
        if self.next_arrival < self.num_sequences or self.handoff:
            return False
        for entry in self.ppool.serving:
            if entry.queue or entry.in_flight:
                return False
        for entry in self.dpool.serving:
            if entry.queue or entry.busy_slots(now_ms):
                return False
        return True

    def next_external_ms(self, now_ms: float) -> Optional[float]:
        candidate: Optional[float] = None
        if self.next_arrival < self.num_sequences:
            candidate = self.arrival_times[self.next_arrival]
        if self.handoff and (candidate is None or self.handoff[0][0] < candidate):
            candidate = self.handoff[0][0]
        return candidate

    def on_event(self, event) -> None:
        kind = event.kind
        if kind == _PREFILL:
            self._wake_prefill(event.payload)
        elif kind == _DSLOT:
            self.wake(event.payload)
        elif kind == _DEVICT:
            _run_eviction(self, event.payload, self.clock.now_ms, _DSLOT)
        elif kind == _PCRASH:
            self._crash_prefill(event.payload, self.clock.now_ms)
        elif kind == _DCRASH:
            self._crash_decode(event.payload, self.clock.now_ms)
        elif kind == _PRECOVER:
            self._recover_prefill(self.clock.now_ms)
        elif kind == _DRECOVER:
            self._recover_decode(self.clock.now_ms)
        elif kind == _PBOOT:
            pool = event.payload
            pool.boots.remove(event)
            entry = self.platform._add_prefill(
                pool.fleet, self.policy_factory, self.mean_tokens,
                self.mean_prompt, self.clock.now_ms)
            pool.add(entry)
        else:  # _DBOOT
            pool = event.payload
            pool.boots.remove(event)
            entry = self.platform._add_decode(
                pool.fleet, self.policy_factory, self.mean_tokens,
                self.mean_prompt, self.clock.now_ms)
            pool.add(entry)

    # ------------------------------------------------------------------ faults
    def _crash_prefill(self, fault: FaultSpec, now: float) -> None:
        """Force-retire one prefill replica; requeue its queued prompts.

        The in-flight chunk-batch is salvaged — its completion event still
        fires and pushes the sequences into the handoff heap — and queued
        prompts requeue to survivors through the prefill balancer (rank
        order preserved under tenancy).  The last active prefill replica
        never crashes, so every sequence still reaches decode.
        """
        pool = self.ppool
        if len(pool.active) < 2:
            return
        victim = min(pool.active, key=lambda e: e.replica_id)
        pool.fleet.drain(victim, now)
        pool.draining += 1
        pool.refresh_active()
        orphans = victim.queue
        victim.queue = []
        self.crashes += 1
        self._pcrash_stock.append(victim.profile)
        self.events.push(now + fault.down_ms, _PRECOVER, fault)
        self._wake_prefill(victim)  # retire once its in-flight batch drains
        if orphans:
            balancer = self.platform.prefill_balancer
            handles = pool.handles
            active = pool.active
            runtime = self.tenant_runtime
            obs = self.obs
            for sample in orphans:
                index = int(balancer.choose(sample, handles, now))
                if not 0 <= index < len(active):
                    raise ValueError(f"balancer {balancer.name!r} chose "
                                     f"prefill replica {index} of "
                                     f"{len(active)}")
                entry = active[index]
                entry.queue.append(sample)
                if runtime is not None:
                    runtime.reposition(entry.queue)
                if obs.enabled:
                    obs.annotate(sample.sequence_id, requeued=True)
                self._wake_prefill(entry)
            self.requeued += len(orphans)

    def _crash_decode(self, fault: FaultSpec, now: float) -> None:
        """Force-retire one decode replica; requeue its queued sequences.

        In-flight streams are salvaged (their tokens were recorded at slot
        claim), queued sequences requeue to survivors through the decode
        balancer, and the crashed hardware boots back ``down_ms`` later.
        """
        pool = self.dpool
        if len(pool.active) < 2:
            return
        victim = min(pool.active, key=lambda e: e.replica_id)
        pool.fleet.drain(victim, now)
        pool.draining += 1
        pool.refresh_active()
        orphans = victim.queue
        victim.queue = []
        self.crashes += 1
        self._dcrash_stock.append((victim.engine, victim.profile))
        self.events.push(now + fault.down_ms, _DRECOVER, fault)
        self.wake(victim)  # retire once its salvaged streams finish
        if orphans:
            balancer = self.platform.decode_balancer
            handles = pool.handles
            active = pool.active
            runtime = self.tenant_runtime
            obs = self.obs
            for sample in orphans:
                index = int(balancer.choose(sample, handles, now))
                if not 0 <= index < len(active):
                    raise ValueError(f"balancer {balancer.name!r} chose "
                                     f"decode replica {index} of "
                                     f"{len(active)}")
                entry = active[index]
                entry.queue.append(sample)
                if runtime is not None:
                    runtime.reposition(entry.queue)
                if obs.enabled:
                    obs.annotate(sample.sequence_id, requeued=True)
                self.wake(entry)
            self.requeued += len(orphans)

    def _recover_prefill(self, now: float) -> None:
        """Boot a replacement for the oldest unrecovered prefill crash."""
        platform = self.platform
        profile = self._pcrash_stock.pop(0)
        entry = self.ppool.fleet.add(platform.prefill_model, profile,
                                     platform.prefill_batch, self.mean_prompt,
                                     now)
        self.ppool.add(entry)
        self.recoveries += 1

    def _recover_decode(self, now: float) -> None:
        """Boot a replacement for the oldest unrecovered decode crash.

        The replacement starts with a fresh (empty) KV accountant — a crash
        loses the cache along with the queued work."""
        engine, profile = self._dcrash_stock.pop(0)
        fleet = self.dpool.fleet
        entry = fleet.add(engine, self.policy_factory(fleet.next_ordinal()),
                          profile, self.mean_tokens, now,
                          kv=self.platform._kv_for(engine, profile))
        self.dpool.add(entry)
        self.recoveries += 1

    # ------------------------------------------------------------------- pass
    def step(self, now: float) -> bool:
        platform = self.platform
        ppool = self.ppool
        dpool = self.dpool

        # Phase 1: admit arrivals into the prefill pool.
        admitted = 0
        next_arrival = self.next_arrival
        arrivals = self.arrival_times
        num_sequences = self.num_sequences
        if next_arrival < num_sequences and arrivals[next_arrival] <= now + 1e-9:
            pending = self.pending
            balancer = platform.prefill_balancer
            prefill_active = ppool.active
            prefill_handles = ppool.handles
            runtime = self.tenant_runtime
            obs = self.obs
            while (next_arrival < num_sequences
                   and arrivals[next_arrival] <= now + 1e-9):
                sample = pending[next_arrival]
                index = int(balancer.choose(sample, prefill_handles, now))
                if not 0 <= index < len(prefill_active):
                    raise ValueError(f"balancer {balancer.name!r} "
                                     f"chose prefill replica {index} of "
                                     f"{len(prefill_active)}")
                entry = prefill_active[index]
                entry.queue.append(sample)
                if runtime is not None:
                    runtime.reposition(entry.queue)
                if obs.enabled:
                    obs.admit(sample.sequence_id, sample.arrival_ms,
                              kind="sequence", pool="prefill",
                              replica=entry.replica_id)
                    if runtime is not None:
                        obs.annotate(sample.sequence_id,
                                     tenant=runtime.tenant_of.get(
                                         sample.sequence_id))
                entry.dispatched += 1
                next_arrival += 1
                admitted += 1
                self._wake_prefill(entry)
            self.next_arrival = next_arrival
        if admitted:
            platform.prefill_autoscaler.observe_admitted(admitted, now)

        # Phase 2: the prefill pool's own autoscaler (queued prompt chunks
        # drive its load signal).
        if self._pautoscaled:
            scale_pool(self, ppool, platform.prefill_autoscaler, now,
                       platform.prefill_min, platform.prefill_max, _PBOOT)

        # Phase 3: prefill progress — finish due chunk-batches (pushing
        # their sequences into the handoff queue with the KV-transfer
        # delay) and start new ones on free replicas.
        progressed = False
        handoff = self.handoff
        prefill_delays = self.prefill_delays
        transfer_delays = self.transfer_delays
        obs = self.obs
        for entry in self.drain_dirty(self._pdirty):
            if entry.in_flight and entry.busy_until_ms <= now + 1e-9:
                done = entry.busy_until_ms
                for sample in entry.in_flight:
                    transfer = entry.model.transfer_ms(sample.prompt_tokens)
                    prefill_delays[sample.sequence_id] = done - sample.arrival_ms
                    transfer_delays[sample.sequence_id] = transfer
                    heapq.heappush(handoff, (done + transfer,
                                             sample.sequence_id, sample))
                    if obs.enabled:
                        # The transfer ends exactly where the handoff entry
                        # becomes decodeable (same float as the heap key).
                        obs.phase(sample.sequence_id, "kv_transfer", done,
                                  done + transfer, pool="prefill",
                                  replica=entry.replica_id)
                entry.prefilled += len(entry.in_flight)
                entry.prefilled_tokens += sum(s.prompt_tokens
                                              for s in entry.in_flight)
                entry.in_flight = []
                progressed = True
            if entry.is_free(now) and entry.queue:
                batch = entry.queue[:entry.prefill_batch]
                del entry.queue[:len(batch)]
                tokens = sum(s.prompt_tokens for s in batch)
                duration = entry.model.batch_prefill_ms(tokens) / entry.profile.speed
                entry.in_flight = batch
                entry.busy_until_ms = now + duration
                entry.last_completion_ms = max(entry.last_completion_ms,
                                               now + duration)
                if obs.enabled:
                    # ``busy_until_ms`` is the float later recorded into
                    # prefill_delays, so the span ends bit-exactly there.
                    batch_end = entry.busy_until_ms
                    replica = entry.replica_id
                    for sample in batch:
                        obs.phase(sample.sequence_id, "prefill_wait",
                                  sample.arrival_ms, now, pool="prefill",
                                  replica=replica)
                        obs.phase(sample.sequence_id, "prefill", now,
                                  batch_end, pool="prefill", replica=replica)
                if entry.busy_until_ms > now + 1e-9:
                    self.events.push(entry.busy_until_ms, _PREFILL, entry)
                else:
                    # Degenerate zero-cost chunk: complete it in the next
                    # pass at this same timestamp instead of scheduling.
                    self._wake_prefill(entry)
                progressed = True

        # Phase 4: handoff — transferred sequences dispatch to the decode
        # pool through its own balancer.
        moved = 0
        if handoff and handoff[0][0] <= now + 1e-9:
            balancer = platform.decode_balancer
            decode_active = dpool.active
            decode_handles = dpool.handles
            runtime = self.tenant_runtime
            while handoff and handoff[0][0] <= now + 1e-9:
                _, _, sample = heapq.heappop(handoff)
                index = int(balancer.choose(sample, decode_handles, now))
                if not 0 <= index < len(decode_active):
                    raise ValueError(f"balancer {balancer.name!r} "
                                     f"chose decode replica {index} of "
                                     f"{len(decode_active)}")
                entry = decode_active[index]
                entry.queue.append(sample)
                if runtime is not None:
                    runtime.reposition(entry.queue)
                entry.dispatched += 1
                moved += 1
                self.wake(entry)
        if moved:
            platform.decode_autoscaler.observe_admitted(moved, now)
            progressed = True

        # Phase 5: the decode pool's own autoscaler (outstanding decode
        # work drives its load signal, as in the monolithic cluster).
        if self._dautoscaled:
            scale_pool(self, dpool, platform.decode_autoscaler, now,
                       platform.decode_min, platform.decode_max, _DBOOT)

        # Phase 6: free decode slots claim queue heads and run the slot
        # loop shared with the monolithic cluster (the decode engines
        # carry no in-slot prefill model — prompts arrive prefilled —
        # and doomed sequences are shed against the TTFT SLO).  The
        # recorded queueing delay spans arrival → first decode step, so
        # the aggregate TTFT includes prefill + transfer + both waits.
        ttft = platform.ttft_slo_ms
        runtime = self.tenant_runtime
        for entry in self.drain_dirty():
            if entry.claim_streams(now, ttft, runtime):
                progressed = True
            _arm_slots(self, entry, now, _DSLOT)
            _schedule_eviction(self, entry, now, _DEVICT)

        # Phase 7: drained replicas that have gone idle leave their pool.
        ppool.retire_idle(now)
        dpool.retire_idle(now)
        return progressed
