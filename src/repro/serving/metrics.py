"""Serving metrics: latency distributions, throughput and accuracy accounting.

Two granularities are provided: :class:`ServingMetrics` aggregates one
replica's run, and :class:`ClusterMetrics` holds one ``ServingMetrics`` per
replica plus fleet-wide rollups (goodput, SLO violations, dispatch balance)
computed over the merged response stream on the cluster's global clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.request import Response
from repro.utils.stats import summarize_latencies

__all__ = ["ServingMetrics", "ClusterMetrics", "dispatch_imbalance_ratio"]


def dispatch_imbalance_ratio(counts: Sequence[int],
                             uptimes_ms: Sequence[float]) -> float:
    """Max/mean ratio of per-replica dispatch *rates* (1.0 = perfectly even).

    Rates are dispatches per provisioned millisecond, so a replica the
    autoscaler added late is judged against its own uptime rather than the
    whole run — a perfectly balanced elastic fleet reads 1.0.  Fixed fleets
    (equal uptimes) reduce to the classic max/mean count ratio.  Shared by
    the classification and generative cluster rollups.
    """
    if not counts or sum(counts) == 0:
        return 1.0
    if len(uptimes_ms) == len(counts) and sum(uptimes_ms) > 0:
        rates = [count / uptime
                 for count, uptime in zip(counts, uptimes_ms) if uptime > 0]
        mean = sum(rates) / len(rates) if rates else 0.0
        if mean > 0:
            return max(rates) / mean
    return max(counts) * len(counts) / sum(counts)


@dataclass
class ServingMetrics:
    """Aggregated outcome of one serving run."""

    responses: List[Response] = field(default_factory=list)
    gpu_busy_ms: float = 0.0
    makespan_ms: float = 0.0
    num_batches: int = 0

    # ----------------------------------------------------------------- write
    def add_response(self, response: Response) -> None:
        self.responses.append(response)

    def add_batch(self, gpu_time_ms: float) -> None:
        self.gpu_busy_ms += float(gpu_time_ms)
        self.num_batches += 1

    # ------------------------------------------------------------------ read
    def served(self) -> List[Response]:
        return [r for r in self.responses if not r.dropped]

    def dropped(self) -> List[Response]:
        return [r for r in self.responses if r.dropped]

    def drop_rate(self) -> float:
        if not self.responses:
            return 0.0
        return len(self.dropped()) / len(self.responses)

    def latencies(self) -> np.ndarray:
        return np.array([r.latency_ms for r in self.served()], dtype=float)

    def queueing_delays(self) -> np.ndarray:
        return np.array([r.queueing_ms for r in self.served()], dtype=float)

    def latency_summary(self) -> Dict[str, float]:
        return summarize_latencies(self.latencies())

    def median_latency(self) -> float:
        return self.latency_summary()["p50"]

    def p25_latency(self) -> float:
        return self.latency_summary()["p25"]

    def p95_latency(self) -> float:
        return self.latency_summary()["p95"]

    def p99_latency(self) -> float:
        return self.latency_summary()["p99"]

    def accuracy(self) -> float:
        """Fraction of served requests whose released result matched the
        original (non-EE) model's prediction."""
        served = self.served()
        if not served:
            return 1.0
        return sum(1 for r in served if r.correct) / len(served)

    def exit_rate(self) -> float:
        served = self.served()
        if not served:
            return 0.0
        return sum(1 for r in served if r.exited) / len(served)

    def throughput_qps(self) -> float:
        """Served requests per second of wall-clock makespan."""
        if self.makespan_ms <= 0:
            return 0.0
        return 1000.0 * len(self.served()) / self.makespan_ms

    def goodput_qps(self, slo_ms: Optional[float] = None) -> float:
        """Requests per second that met their SLO."""
        if self.makespan_ms <= 0:
            return 0.0
        served = self.served()
        if slo_ms is None:
            return self.throughput_qps()
        good = sum(1 for r in served if r.latency_ms <= slo_ms)
        return 1000.0 * good / self.makespan_ms

    def average_batch_size(self) -> float:
        if self.num_batches == 0:
            return 0.0
        return len(self.served()) / self.num_batches

    def gpu_utilization(self) -> float:
        if self.makespan_ms <= 0:
            return 0.0
        return min(1.0, self.gpu_busy_ms / self.makespan_ms)

    def slo_violation_rate(self, slo_ms: float) -> float:
        served = self.served()
        if not served:
            return 0.0
        violations = sum(1 for r in served if r.latency_ms > slo_ms)
        return violations / len(served)

    def summary(self) -> Dict[str, float]:
        """One-dictionary summary used by benchmarks and EXPERIMENTS.md."""
        lat = self.latency_summary()
        return {
            "p25_ms": lat["p25"],
            "p50_ms": lat["p50"],
            "p95_ms": lat["p95"],
            "p99_ms": lat["p99"],
            "mean_ms": lat["mean"],
            "throughput_qps": self.throughput_qps(),
            "avg_batch_size": self.average_batch_size(),
            "accuracy": self.accuracy(),
            "exit_rate": self.exit_rate(),
            "drop_rate": self.drop_rate(),
            "num_served": float(len(self.served())),
        }

    # ----------------------------------------------------------------- merge
    @classmethod
    def merged(cls, parts: Sequence["ServingMetrics"],
               makespan_ms: Optional[float] = None) -> "ServingMetrics":
        """Combine several runs into one aggregate view.

        Responses and accelerator busy time add up; the makespan defaults to
        the longest part (parallel replicas) unless the caller supplies the
        fleet's global wall-clock span.
        """
        out = cls()
        for metrics in parts:
            out.responses.extend(metrics.responses)
            out.gpu_busy_ms += metrics.gpu_busy_ms
            out.num_batches += metrics.num_batches
            out.makespan_ms = max(out.makespan_ms, metrics.makespan_ms)
        if makespan_ms is not None:
            out.makespan_ms = makespan_ms
        return out


@dataclass
class ClusterMetrics:
    """Per-replica metrics plus fleet-wide rollups for one cluster run.

    ``replicas`` covers every replica that ever served during the run —
    including ones the autoscaler retired mid-run — so the conservation
    invariant and all rollups span the full membership history.
    """

    replicas: List[ServingMetrics] = field(default_factory=list)
    #: how many requests the balancer routed to each replica (first dispatch
    #: only; salvage re-routes are counted in ``rerouted``).
    dispatch_counts: List[int] = field(default_factory=list)
    #: global wall-clock span (first arrival to last completion) in ms.
    makespan_ms: float = 0.0
    #: doomed requests the dispatcher re-routed to another replica (drop salvage).
    rerouted: int = 0
    #: (time_ms, active_replicas) recorded at every membership change.
    fleet_timeline: List[Tuple[float, int]] = field(default_factory=list)
    #: cost-weighted replica-seconds consumed by the fleet (the autoscaling
    #: cost metric: what the run would bill at one cost unit per second of
    #: base-speed replica).
    replica_seconds: float = 0.0
    #: unweighted provisioned milliseconds (denominator for utilization).
    replica_active_ms: float = 0.0
    #: per-replica provisioned milliseconds (added -> retired), aligned with
    #: ``replicas``; normalizes dispatch balance for elastic fleets.
    replica_uptimes_ms: List[float] = field(default_factory=list)
    _aggregate: Optional[ServingMetrics] = field(default=None, init=False,
                                                 repr=False, compare=False)

    def num_replicas(self) -> int:
        return len(self.replicas)

    def peak_replicas(self) -> int:
        """Largest number of simultaneously active replicas during the run."""
        if not self.fleet_timeline:
            return len(self.replicas)
        return max(count for _, count in self.fleet_timeline)

    # ------------------------------------------------------------- aggregate
    def aggregate(self) -> ServingMetrics:
        """Merged response stream measured on the cluster's global clock.

        Cached: a ClusterMetrics records a finished run, so the merge is
        computed once and shared by every fleet rollup.
        """
        if self._aggregate is None:
            self._aggregate = ServingMetrics.merged(self.replicas,
                                                    makespan_ms=self.makespan_ms)
        return self._aggregate

    def fleet_throughput_qps(self) -> float:
        return self.aggregate().throughput_qps()

    def fleet_goodput_qps(self, slo_ms: Optional[float] = None) -> float:
        return self.aggregate().goodput_qps(slo_ms)

    def fleet_slo_violation_rate(self, slo_ms: float) -> float:
        return self.aggregate().slo_violation_rate(slo_ms)

    def fleet_drop_rate(self) -> float:
        return self.aggregate().drop_rate()

    def fleet_gpu_utilization(self) -> float:
        """Mean accelerator utilization over the fleet's provisioned time.

        With a dynamic fleet the denominator is the replica-milliseconds
        actually provisioned (a replica retired halfway through the run only
        counts for its lifetime); fixed fleets fall back to
        ``makespan × num_replicas``, which is the same quantity.
        """
        if self.makespan_ms <= 0 or not self.replicas:
            return 0.0
        busy = sum(m.gpu_busy_ms for m in self.replicas)
        provisioned = self.replica_active_ms if self.replica_active_ms > 0 \
            else self.makespan_ms * len(self.replicas)
        return min(1.0, busy / provisioned)

    def dispatch_imbalance(self) -> float:
        """Max/mean per-replica dispatch-rate ratio (1.0 = perfectly even)."""
        return dispatch_imbalance_ratio(self.dispatch_counts,
                                        self.replica_uptimes_ms)

    # --------------------------------------------------- fleet latency rollups
    def latency_summary(self) -> Dict[str, float]:
        """Fleet-wide latency percentiles over the merged response stream.

        Safe for runs where zero requests complete (all-dropped or
        drained-to-empty fleets): returns zeroed percentiles with
        ``count == 0`` instead of raising.
        """
        return self.aggregate().latency_summary()

    def median_latency(self) -> float:
        return self.latency_summary()["p50"]

    def p99_latency(self) -> float:
        return self.latency_summary()["p99"]

    # -------------------------------------------------------------- summaries
    def per_replica_summaries(self) -> List[Dict[str, float]]:
        return [m.summary() for m in self.replicas]

    def summary(self, slo_ms: Optional[float] = None) -> Dict[str, float]:
        """Fleet rollup: aggregate latency stats plus cluster-only metrics."""
        aggregate = self.aggregate()
        data = aggregate.summary()
        data.update({
            "num_replicas": float(self.num_replicas()),
            "peak_replicas": float(self.peak_replicas()),
            "fleet_gpu_utilization": self.fleet_gpu_utilization(),
            "dispatch_imbalance": self.dispatch_imbalance(),
            "rerouted": float(self.rerouted),
            "replica_seconds": float(self.replica_seconds),
        })
        if slo_ms is not None:
            data["fleet_goodput_qps"] = aggregate.goodput_qps(slo_ms)
            data["fleet_slo_violation_rate"] = aggregate.slo_violation_rate(slo_ms)
        return data
