"""Serving metrics: latency distributions, throughput and accuracy accounting.

Two granularities are provided: :class:`ServingMetrics` aggregates one
replica's run, and :class:`ClusterMetrics` holds one ``ServingMetrics`` per
replica plus fleet-wide rollups (goodput, SLO violations, dispatch balance)
computed over the merged response stream on the cluster's global clock.

``ServingMetrics`` stores responses *columnar*: one flat list per Response
field instead of one :class:`~repro.serving.request.Response` object per
request.  Building a Response per served request dominated the simulators'
hot path (object construction is ~1000× the cost of a few list appends at
million-request trace sizes), so the write path now defers even the column
appends: :meth:`record_batch` stashes ``(batch, result, start_ms)`` and the
per-request columns are materialized lazily on first read.  The
:attr:`responses` property still yields real Response objects — built on
demand and cached — so every existing consumer (tests, plotting, rollups)
sees the exact records the eager path produced, in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.request import Request, Response
from repro.utils.stats import summarize_latencies

__all__ = ["ServingMetrics", "ClusterMetrics", "dispatch_imbalance_ratio"]


def dispatch_imbalance_ratio(counts: Sequence[int],
                             uptimes_ms: Sequence[float]) -> float:
    """Max/mean ratio of per-replica dispatch *rates* (1.0 = perfectly even).

    Rates are dispatches per provisioned millisecond, so a replica the
    autoscaler added late is judged against its own uptime rather than the
    whole run — a perfectly balanced elastic fleet reads 1.0.  Fixed fleets
    (equal uptimes) reduce to the classic max/mean count ratio.  Shared by
    the classification and generative cluster rollups.
    """
    if not counts or sum(counts) == 0:
        return 1.0
    if len(uptimes_ms) == len(counts) and sum(uptimes_ms) > 0:
        rates = [count / uptime
                 for count, uptime in zip(counts, uptimes_ms) if uptime > 0]
        mean = sum(rates) / len(rates) if rates else 0.0
        if mean > 0:
            return max(rates) / mean
    return max(counts) * len(counts) / sum(counts)


#: Column order of the internal response table (mirrors Response's fields).
_COLUMNS = ("request_id", "arrival_ms", "scheduled_ms", "completion_ms",
            "queueing_ms", "serving_ms", "latency_ms", "batch_size",
            "exited", "exit_depth", "correct", "dropped")


class ServingMetrics:
    """Aggregated outcome of one serving run (columnar response storage)."""

    __slots__ = ("gpu_busy_ms", "makespan_ms", "num_batches",
                 "_pending", "_cols", "_num_recorded", "_num_dropped",
                 "_num_exited", "_num_correct_served", "_responses_cache",
                 "_summary_cache")

    def __init__(self, gpu_busy_ms: float = 0.0, makespan_ms: float = 0.0,
                 num_batches: int = 0) -> None:
        self.gpu_busy_ms = gpu_busy_ms
        self.makespan_ms = makespan_ms
        self.num_batches = num_batches
        #: deferred (batch, result, start_ms) tuples awaiting column append.
        self._pending: List[Tuple[Sequence[Request], "object", float]] = []
        self._cols: Tuple[list, ...] = tuple([] for _ in _COLUMNS)
        self._num_recorded = 0
        self._num_dropped = 0
        self._num_exited = 0
        self._num_correct_served = 0
        self._responses_cache: Optional[List[Response]] = None
        self._summary_cache: Optional[Dict[str, float]] = None

    # ----------------------------------------------------------------- write
    def record_batch(self, batch: Sequence[Request], result, start_ms: float) -> None:
        """Fast path for :meth:`ServingPlatform.complete`: defer per-request
        bookkeeping to first read.  ``result`` must not be mutated afterwards
        (no shipped executor does)."""
        self._pending.append((batch, result, start_ms))
        self._num_recorded += len(batch)
        self._responses_cache = None
        self._summary_cache = None

    def record_drop(self, request: Request, now_ms: float) -> None:
        """Fast path for queue-expiry drops; equivalent to ``add_response``
        with the drop Response the expire phase used to build."""
        if self._pending:
            self._flush()
        (ids, arrivals, scheduled, completions, queueing, serving, latency,
         batch_sizes, exited, exit_depth, correct, dropped) = self._cols
        wait = now_ms - request.arrival_ms
        ids.append(request.request_id)
        arrivals.append(request.arrival_ms)
        scheduled.append(now_ms)
        completions.append(now_ms)
        queueing.append(wait)
        serving.append(0.0)
        latency.append(wait)
        batch_sizes.append(0)
        exited.append(False)
        exit_depth.append(None)
        correct.append(True)
        dropped.append(True)
        self._num_recorded += 1
        self._num_dropped += 1
        self._responses_cache = None
        self._summary_cache = None

    def add_response(self, response: Response) -> None:
        """Record one pre-built Response (compat path; reads and tests)."""
        if self._pending:
            self._flush()
        for column, name in zip(self._cols, _COLUMNS):
            column.append(getattr(response, name))
        self._num_recorded += 1
        if response.dropped:
            self._num_dropped += 1
        else:
            if response.exited:
                self._num_exited += 1
            if response.correct:
                self._num_correct_served += 1
        self._responses_cache = None
        self._summary_cache = None

    def add_batch(self, gpu_time_ms: float) -> None:
        self.gpu_busy_ms += gpu_time_ms
        self.num_batches += 1

    def _flush(self) -> None:
        """Materialize deferred batches into the columns, in record order."""
        (ids, arrivals, scheduled, completions, queueing, serving, latency,
         batch_sizes, exited, exit_depth, correct, dropped) = self._cols
        num_exited = 0
        num_correct = 0
        for batch, result, start_ms in self._pending:
            offsets = result.result_offsets_ms
            exits = result.exited
            depths = result.exit_depths
            corrects = result.correct
            size = len(batch)
            for idx, request in enumerate(batch):
                offset = float(offsets[idx])
                completion = start_ms + offset
                ids.append(request.request_id)
                arrivals.append(request.arrival_ms)
                scheduled.append(start_ms)
                completions.append(completion)
                queueing.append(start_ms - request.arrival_ms)
                serving.append(offset)
                latency.append(completion - request.arrival_ms)
                batch_sizes.append(size)
                did_exit = bool(exits[idx])
                exited.append(did_exit)
                exit_depth.append(depths[idx])
                is_correct = bool(corrects[idx])
                correct.append(is_correct)
                dropped.append(False)
                if did_exit:
                    num_exited += 1
                if is_correct:
                    num_correct += 1
        self._pending = []
        self._num_exited += num_exited
        self._num_correct_served += num_correct

    # ------------------------------------------------------------------ read
    @property
    def responses(self) -> List[Response]:
        """The full response stream as Response objects (built lazily, cached)."""
        if self._responses_cache is None:
            if self._pending:
                self._flush()
            self._responses_cache = [Response(*row) for row in zip(*self._cols)] \
                if self._num_recorded else []
        return self._responses_cache

    def num_responses(self) -> int:
        """Total recorded responses (served + dropped) without materializing."""
        return self._num_recorded

    def num_served(self) -> int:
        return self._num_recorded - self._num_dropped

    def served(self) -> List[Response]:
        return [r for r in self.responses if not r.dropped]

    def dropped(self) -> List[Response]:
        return [r for r in self.responses if r.dropped]

    def drop_rate(self) -> float:
        if not self._num_recorded:
            return 0.0
        return self._num_dropped / self._num_recorded

    def _served_column(self, name: str) -> np.ndarray:
        if self._pending:
            self._flush()
        index = _COLUMNS.index(name)
        values = np.asarray(self._cols[index], dtype=float)
        if self._num_dropped:
            keep = ~np.asarray(self._cols[-1], dtype=bool)
            values = values[keep]
        return values

    def latencies(self) -> np.ndarray:
        return self._served_column("latency_ms")

    def queueing_delays(self) -> np.ndarray:
        return self._served_column("queueing_ms")

    def latency_summary(self) -> Dict[str, float]:
        """Latency percentiles over served requests (computed once, cached).

        The percentile properties and ``summary()`` all read this; caching
        means one quantile pass per run instead of one per metric.  Every
        write path invalidates the cache, and callers get a copy so mutating
        the returned dict cannot poison later reads.
        """
        if self._summary_cache is None:
            self._summary_cache = summarize_latencies(self.latencies())
        return dict(self._summary_cache)

    def median_latency(self) -> float:
        return self.latency_summary()["p50"]

    def p25_latency(self) -> float:
        return self.latency_summary()["p25"]

    def p95_latency(self) -> float:
        return self.latency_summary()["p95"]

    def p99_latency(self) -> float:
        return self.latency_summary()["p99"]

    def accuracy(self) -> float:
        """Fraction of served requests whose released result matched the
        original (non-EE) model's prediction."""
        served = self.num_served()
        if not served:
            return 1.0
        if self._pending:
            self._flush()
        return self._num_correct_served / served

    def exit_rate(self) -> float:
        served = self.num_served()
        if not served:
            return 0.0
        if self._pending:
            self._flush()
        return self._num_exited / served

    def throughput_qps(self) -> float:
        """Served requests per second of wall-clock makespan."""
        if self.makespan_ms <= 0:
            return 0.0
        return 1000.0 * self.num_served() / self.makespan_ms

    def goodput_qps(self, slo_ms: Optional[float] = None) -> float:
        """Requests per second that met their SLO."""
        if self.makespan_ms <= 0:
            return 0.0
        if slo_ms is None:
            return self.throughput_qps()
        good = int(np.count_nonzero(self.latencies() <= slo_ms))
        return 1000.0 * good / self.makespan_ms

    def average_batch_size(self) -> float:
        if self.num_batches == 0:
            return 0.0
        return self.num_served() / self.num_batches

    def gpu_utilization(self) -> float:
        if self.makespan_ms <= 0:
            return 0.0
        return min(1.0, self.gpu_busy_ms / self.makespan_ms)

    def slo_violation_rate(self, slo_ms: float) -> float:
        latencies = self.latencies()
        if latencies.size == 0:
            return 0.0
        return int(np.count_nonzero(latencies > slo_ms)) / latencies.size

    def summary(self) -> Dict[str, float]:
        """One-dictionary summary used by benchmarks and EXPERIMENTS.md."""
        lat = self.latency_summary()
        return {
            "p25_ms": lat["p25"],
            "p50_ms": lat["p50"],
            "p95_ms": lat["p95"],
            "p99_ms": lat["p99"],
            "mean_ms": lat["mean"],
            "throughput_qps": self.throughput_qps(),
            "avg_batch_size": self.average_batch_size(),
            "accuracy": self.accuracy(),
            "exit_rate": self.exit_rate(),
            "drop_rate": self.drop_rate(),
            "num_served": float(self.num_served()),
        }

    # ----------------------------------------------------------------- merge
    @classmethod
    def merged(cls, parts: Sequence["ServingMetrics"],
               makespan_ms: Optional[float] = None) -> "ServingMetrics":
        """Combine several runs into one aggregate view.

        Responses and accelerator busy time add up; the makespan defaults to
        the longest part (parallel replicas) unless the caller supplies the
        fleet's global wall-clock span.  Column-level concatenation: no
        Response objects are built unless the aggregate is actually read.
        """
        out = cls()
        for metrics in parts:
            if metrics._pending:
                metrics._flush()
            for dst, src in zip(out._cols, metrics._cols):
                dst.extend(src)
            out._num_recorded += metrics._num_recorded
            out._num_dropped += metrics._num_dropped
            out._num_exited += metrics._num_exited
            out._num_correct_served += metrics._num_correct_served
            out.gpu_busy_ms += metrics.gpu_busy_ms
            out.num_batches += metrics.num_batches
            out.makespan_ms = max(out.makespan_ms, metrics.makespan_ms)
        if makespan_ms is not None:
            out.makespan_ms = makespan_ms
        return out


@dataclass
class ClusterMetrics:
    """Per-replica metrics plus fleet-wide rollups for one cluster run.

    ``replicas`` covers every replica that ever served during the run —
    including ones the autoscaler retired mid-run — so the conservation
    invariant and all rollups span the full membership history.
    """

    replicas: List[ServingMetrics] = field(default_factory=list)
    #: how many requests the balancer routed to each replica (first dispatch
    #: only; salvage re-routes are counted in ``rerouted``).
    dispatch_counts: List[int] = field(default_factory=list)
    #: global wall-clock span (first arrival to last completion) in ms.
    makespan_ms: float = 0.0
    #: doomed requests the dispatcher re-routed to another replica (drop salvage).
    rerouted: int = 0
    #: (time_ms, active_replicas) recorded at every membership change.
    fleet_timeline: List[Tuple[float, int]] = field(default_factory=list)
    #: cost-weighted replica-seconds consumed by the fleet (the autoscaling
    #: cost metric: what the run would bill at one cost unit per second of
    #: base-speed replica).
    replica_seconds: float = 0.0
    #: unweighted provisioned milliseconds (denominator for utilization).
    replica_active_ms: float = 0.0
    #: per-replica provisioned milliseconds (added -> retired), aligned with
    #: ``replicas``; normalizes dispatch balance for elastic fleets.
    replica_uptimes_ms: List[float] = field(default_factory=list)
    #: fault injection: crashes fired, replacements booted, and queued
    #: requests requeued to surviving replicas by a crash.
    crashes: int = 0
    recoveries: int = 0
    requeued: int = 0
    #: per-tenant rollups (empty unless the run configured tenancy); see
    #: :func:`repro.tenancy.rollup.request_rollups` for the keys.
    tenant_rollups: Dict[str, Dict[str, float]] = field(default_factory=dict)
    _aggregate: Optional[ServingMetrics] = field(default=None, init=False,
                                                 repr=False, compare=False)

    def num_replicas(self) -> int:
        return len(self.replicas)

    def peak_replicas(self) -> int:
        """Largest number of simultaneously active replicas during the run."""
        if not self.fleet_timeline:
            return len(self.replicas)
        return max(count for _, count in self.fleet_timeline)

    # ------------------------------------------------------------- aggregate
    def aggregate(self) -> ServingMetrics:
        """Merged response stream measured on the cluster's global clock.

        Cached: a ClusterMetrics records a finished run, so the merge is
        computed once and shared by every fleet rollup.
        """
        if self._aggregate is None:
            self._aggregate = ServingMetrics.merged(self.replicas,
                                                    makespan_ms=self.makespan_ms)
        return self._aggregate

    def fleet_throughput_qps(self) -> float:
        return self.aggregate().throughput_qps()

    def fleet_goodput_qps(self, slo_ms: Optional[float] = None) -> float:
        return self.aggregate().goodput_qps(slo_ms)

    def fleet_slo_violation_rate(self, slo_ms: float) -> float:
        return self.aggregate().slo_violation_rate(slo_ms)

    def fleet_drop_rate(self) -> float:
        return self.aggregate().drop_rate()

    def fleet_gpu_utilization(self) -> float:
        """Mean accelerator utilization over the fleet's provisioned time.

        With a dynamic fleet the denominator is the replica-milliseconds
        actually provisioned (a replica retired halfway through the run only
        counts for its lifetime); fixed fleets fall back to
        ``makespan × num_replicas``, which is the same quantity.
        """
        if self.makespan_ms <= 0 or not self.replicas:
            return 0.0
        busy = sum(m.gpu_busy_ms for m in self.replicas)
        provisioned = self.replica_active_ms if self.replica_active_ms > 0 \
            else self.makespan_ms * len(self.replicas)
        return min(1.0, busy / provisioned)

    def dispatch_imbalance(self) -> float:
        """Max/mean per-replica dispatch-rate ratio (1.0 = perfectly even)."""
        return dispatch_imbalance_ratio(self.dispatch_counts,
                                        self.replica_uptimes_ms)

    # --------------------------------------------------- fleet latency rollups
    def latency_summary(self) -> Dict[str, float]:
        """Fleet-wide latency percentiles over the merged response stream.

        Safe for runs where zero requests complete (all-dropped or
        drained-to-empty fleets): returns zeroed percentiles with
        ``count == 0`` instead of raising.
        """
        return self.aggregate().latency_summary()

    def median_latency(self) -> float:
        return self.latency_summary()["p50"]

    def p99_latency(self) -> float:
        return self.latency_summary()["p99"]

    # -------------------------------------------------------------- summaries
    def per_replica_summaries(self) -> List[Dict[str, float]]:
        return [m.summary() for m in self.replicas]

    def summary(self, slo_ms: Optional[float] = None) -> Dict[str, float]:
        """Fleet rollup: aggregate latency stats plus cluster-only metrics."""
        aggregate = self.aggregate()
        data = aggregate.summary()
        data.update({
            "num_replicas": float(self.num_replicas()),
            "peak_replicas": float(self.peak_replicas()),
            "fleet_gpu_utilization": self.fleet_gpu_utilization(),
            "dispatch_imbalance": self.dispatch_imbalance(),
            "rerouted": float(self.rerouted),
            "replica_seconds": float(self.replica_seconds),
        })
        if slo_ms is not None:
            data["fleet_goodput_qps"] = aggregate.goodput_qps(slo_ms)
            data["fleet_slo_violation_rate"] = aggregate.slo_violation_rate(slo_ms)
        if self.crashes or self.recoveries:
            data["crashes"] = float(self.crashes)
            data["recoveries"] = float(self.recoveries)
            data["requeued"] = float(self.requeued)
        return data
