"""Serving metrics: latency distributions, throughput and accuracy accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serving.request import Response
from repro.utils.stats import summarize_latencies

__all__ = ["ServingMetrics"]


@dataclass
class ServingMetrics:
    """Aggregated outcome of one serving run."""

    responses: List[Response] = field(default_factory=list)
    gpu_busy_ms: float = 0.0
    makespan_ms: float = 0.0
    num_batches: int = 0

    # ----------------------------------------------------------------- write
    def add_response(self, response: Response) -> None:
        self.responses.append(response)

    def add_batch(self, gpu_time_ms: float) -> None:
        self.gpu_busy_ms += float(gpu_time_ms)
        self.num_batches += 1

    # ------------------------------------------------------------------ read
    def served(self) -> List[Response]:
        return [r for r in self.responses if not r.dropped]

    def dropped(self) -> List[Response]:
        return [r for r in self.responses if r.dropped]

    def drop_rate(self) -> float:
        if not self.responses:
            return 0.0
        return len(self.dropped()) / len(self.responses)

    def latencies(self) -> np.ndarray:
        return np.array([r.latency_ms for r in self.served()], dtype=float)

    def queueing_delays(self) -> np.ndarray:
        return np.array([r.queueing_ms for r in self.served()], dtype=float)

    def latency_summary(self) -> Dict[str, float]:
        return summarize_latencies(self.latencies())

    def median_latency(self) -> float:
        return self.latency_summary()["p50"]

    def p25_latency(self) -> float:
        return self.latency_summary()["p25"]

    def p95_latency(self) -> float:
        return self.latency_summary()["p95"]

    def accuracy(self) -> float:
        """Fraction of served requests whose released result matched the
        original (non-EE) model's prediction."""
        served = self.served()
        if not served:
            return 1.0
        return sum(1 for r in served if r.correct) / len(served)

    def exit_rate(self) -> float:
        served = self.served()
        if not served:
            return 0.0
        return sum(1 for r in served if r.exited) / len(served)

    def throughput_qps(self) -> float:
        """Served requests per second of wall-clock makespan."""
        if self.makespan_ms <= 0:
            return 0.0
        return 1000.0 * len(self.served()) / self.makespan_ms

    def goodput_qps(self, slo_ms: Optional[float] = None) -> float:
        """Requests per second that met their SLO."""
        if self.makespan_ms <= 0:
            return 0.0
        served = self.served()
        if slo_ms is None:
            return self.throughput_qps()
        good = sum(1 for r in served if r.latency_ms <= slo_ms)
        return 1000.0 * good / self.makespan_ms

    def average_batch_size(self) -> float:
        if self.num_batches == 0:
            return 0.0
        return len(self.served()) / self.num_batches

    def gpu_utilization(self) -> float:
        if self.makespan_ms <= 0:
            return 0.0
        return min(1.0, self.gpu_busy_ms / self.makespan_ms)

    def slo_violation_rate(self, slo_ms: float) -> float:
        served = self.served()
        if not served:
            return 0.0
        violations = sum(1 for r in served if r.latency_ms > slo_ms)
        return violations / len(served)

    def summary(self) -> Dict[str, float]:
        """One-dictionary summary used by benchmarks and EXPERIMENTS.md."""
        lat = self.latency_summary()
        return {
            "p25_ms": lat["p25"],
            "p50_ms": lat["p50"],
            "p95_ms": lat["p95"],
            "mean_ms": lat["mean"],
            "throughput_qps": self.throughput_qps(),
            "avg_batch_size": self.average_batch_size(),
            "accuracy": self.accuracy(),
            "exit_rate": self.exit_rate(),
            "drop_rate": self.drop_rate(),
            "num_served": float(len(self.served())),
        }
