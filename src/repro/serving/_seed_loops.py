"""Reference event loops: the pre-kernel "rescan and advance" schedulers.

These are verbatim copies of the three platform ``run()`` bodies as they
stood before the port to :mod:`repro.serving.kernel` — the O(replicas)
per-timestamp rescans ending in the shared "collect wake times, filter
finite, ``now = min(future)``" tail.  They exist for exactly one purpose:
the kernel equivalence suite (``tests/serving/test_kernel_equivalence.py``)
runs every scenario through both schedulers and asserts **bit-identical**
metrics, which is the contract the tentpole refactor promises.

They are driven through the public platform objects (and reuse their
helper methods: executor resolution, scale-out spawn, salvage, collection),
so configuration handling cannot drift; only the *scheduling* differs.

Do not use these for real runs — they are the slow path by design — and do
not "fix" them to match kernel behaviour: when the two disagree, the kernel
is wrong.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.serving.cluster import ClusterPlatform, _scale_result
from repro.serving.fleet import DRAINING, FleetState
from repro.serving.generative_cluster import (GenerativeClusterMetrics,
                                              GenerativeClusterPlatform,
                                              GenerativeFleetState,
                                              PolicyFactory)
from repro.serving.metrics import ClusterMetrics
from repro.serving.platform import BatchExecutorFn
from repro.serving.request import Request

__all__ = ["seed_cluster_run", "seed_generative_run", "seed_disagg_run"]


def seed_cluster_run(cluster: ClusterPlatform, requests: Sequence[Request],
                     executors: Union[BatchExecutorFn,
                                      Sequence[BatchExecutorFn], None] = None,
                     executor_factory: Optional[Callable[[int], BatchExecutorFn]]
                     = None) -> ClusterMetrics:
    """The pre-kernel ``ClusterPlatform.run`` loop, verbatim."""
    self = cluster
    factory = self._executor_factory(executors, executor_factory)
    self.balancer.reset()
    self.autoscaler.reset()
    self.autoscaler.set_bounds(self.min_replicas, self.max_replicas)

    pending = sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))
    num_requests = len(pending)
    start = pending[0].arrival_ms if pending else 0.0

    fleet = FleetState()
    for platform, profile in zip(self.platforms, self.profiles):
        fleet.add(platform, factory(fleet.next_ordinal()), profile, start)

    if num_requests == 0:
        return self._collect(fleet, start, start, rerouted=0)

    next_arrival = 0
    now = start
    rerouted = 0
    rerouted_ids: Set[int] = set()
    boot_times: List[float] = []   # scheduled scale-out completions

    while next_arrival < num_requests or any(e.state.queue for e in fleet.serving()):
        # Phase 0: provisioning completes — bring booted replicas online.
        if boot_times:
            due = sum(1 for t in boot_times if t <= now + 1e-9)
            if due:
                boot_times = [t for t in boot_times if t > now + 1e-9]
                for _ in range(due):
                    self._spawn(fleet, factory, now)

        active = fleet.active()
        for position, entry in enumerate(active):
            entry.handle.index = position
        handles = [entry.handle for entry in active]

        # Phase 1: admit + dispatch everything that has arrived by now.
        admitted = 0
        while (next_arrival < num_requests
               and pending[next_arrival].arrival_ms <= now + 1e-9):
            request = pending[next_arrival]
            index = int(self.balancer.choose(request, handles, now))
            if not 0 <= index < len(active):
                raise ValueError(f"balancer {self.balancer.name!r} chose replica "
                                 f"{index} of {len(active)}")
            entry = active[index]
            entry.platform.admit(entry.state, request)
            entry.dispatched += 1
            next_arrival += 1
            admitted += 1
        if admitted:
            self.autoscaler.observe_admitted(admitted, now)

        # Phase 2: autoscaler decision on the global clock.
        desired = int(self.autoscaler.desired_replicas(now, handles))
        desired = max(self.min_replicas, min(self.max_replicas, desired))
        provisioned = len(active) + len(boot_times)
        if desired > provisioned:
            delay = max(float(self.autoscaler.provision_delay_ms), 1e-6)
            boot_times.extend([now + delay] * (desired - provisioned))
        elif desired < len(active):
            boot_times.clear()
            for entry in sorted(active,
                                key=lambda e: -e.replica_id)[:len(active) - desired]:
                fleet.drain(entry, now)
            active = fleet.active()
            for position, entry in enumerate(active):
                entry.handle.index = position
            handles = [entry.handle for entry in active]

        # Phase 3: cluster-level drop salvage.
        if handles and (len(handles) > 1
                        or any(e.status == DRAINING and e.state.queue
                               for e in fleet.entries)):
            rerouted += self._salvage_doomed(fleet, active, handles, now,
                                             rerouted_ids)

        next_arrival_ms = (pending[next_arrival].arrival_ms
                           if next_arrival < num_requests else np.inf)
        wake_times: List[float] = []
        progressed = False

        # Phase 4 per serving replica: expire, select, serve (when idle).
        for entry in fleet.serving():
            platform, state = entry.platform, entry.state
            if not state.idle_at(now):
                wake_times.append(state.busy_until_ms)
                continue
            if not state.queue:
                continue
            platform.expire(state, now)
            if not state.queue:
                continue
            batch, wake_up = platform.select(state, now)
            if not batch:
                target = min(wake_up, next_arrival_ms)
                if not np.isfinite(target) or target <= now + 1e-9:
                    batch = platform.force_batch(state)
                else:
                    wake_times.append(wake_up)
                    continue
            platform.dispatch(state, batch)
            result = _scale_result(entry.executor(batch, now),
                                   entry.profile.speed)
            platform.complete(state, batch, result, now)
            wake_times.append(state.busy_until_ms)
            progressed = True

        # Phase 5: drained replicas that have gone idle leave the fleet.
        fleet.retire_idle(now)

        if progressed:
            continue

        # Advance the global clock to the earliest future event.
        if next_arrival < num_requests:
            wake_times.append(next_arrival_ms)
        wake_times.extend(boot_times)
        future = [t for t in wake_times if np.isfinite(t) and t > now + 1e-9]
        if not future:
            break  # nothing can happen anymore (all queues drained)
        now = min(future)

    for entry in fleet.entries:
        entry.state.finalize_makespan()

    last_event = max((e.state.last_event_ms for e in fleet.entries
                      if np.isfinite(e.state.last_event_ms)), default=start)
    return self._collect(fleet, start, last_event, rerouted)


def seed_generative_run(cluster: GenerativeClusterPlatform, workload,
                        policy_factory: PolicyFactory) -> GenerativeClusterMetrics:
    """The pre-kernel ``GenerativeClusterPlatform.run`` loop, verbatim."""
    self = cluster
    self.balancer.reset()
    self.autoscaler.reset()
    self.autoscaler.set_bounds(self.min_replicas, self.max_replicas)

    pending = sorted(workload.sequences,
                     key=lambda s: (s.arrival_ms, s.sequence_id))
    num_sequences = len(pending)
    start = pending[0].arrival_ms if pending else 0.0
    mean_tokens = workload.mean_output_length() or 1.0

    fleet = GenerativeFleetState()
    for engine, profile in zip(self.engines, self.profiles):
        fleet.add(engine, policy_factory(fleet.next_ordinal()), profile,
                  mean_tokens, start)

    if num_sequences == 0:
        return self._collect(fleet, start, start)

    next_arrival = 0
    now = start
    boot_times: List[float] = []   # scheduled scale-out completions

    while (next_arrival < num_sequences
           or any(e.queue or e.busy_slots(now) for e in fleet.serving())):
        # Phase 0: provisioning completes — bring booted replicas online.
        if boot_times:
            due = sum(1 for t in boot_times if t <= now + 1e-9)
            if due:
                boot_times = [t for t in boot_times if t > now + 1e-9]
                for _ in range(due):
                    fleet.add(self.engines[0],
                              policy_factory(fleet.next_ordinal()),
                              self.scale_out_profile, mean_tokens, now)

        active = fleet.active()
        for position, entry in enumerate(active):
            entry.handle.index = position
        handles = [entry.handle for entry in active]

        # Phase 1: admit + dispatch every sequence that has arrived by now.
        admitted = 0
        while (next_arrival < num_sequences
               and pending[next_arrival].arrival_ms <= now + 1e-9):
            sample = pending[next_arrival]
            index = int(self.balancer.choose(sample, handles, now))
            if not 0 <= index < len(active):
                raise ValueError(f"balancer {self.balancer.name!r} chose "
                                 f"replica {index} of {len(active)}")
            entry = active[index]
            entry.queue.append(sample)
            entry.dispatched += 1
            next_arrival += 1
            admitted += 1
        if admitted:
            self.autoscaler.observe_admitted(admitted, now)

        # Phase 2: autoscaler decision on the global clock.
        desired = int(self.autoscaler.desired_replicas(now, handles))
        desired = max(self.min_replicas, min(self.max_replicas, desired))
        provisioned = len(active) + len(boot_times)
        if desired > provisioned:
            delay = max(float(self.autoscaler.provision_delay_ms), 1e-6)
            boot_times.extend([now + delay] * (desired - provisioned))
        elif desired < len(active):
            boot_times.clear()
            for entry in sorted(active,
                                key=lambda e: -e.replica_id)[:len(active) - desired]:
                fleet.drain(entry, now)
            active = fleet.active()
            for position, entry in enumerate(active):
                entry.handle.index = position
            handles = [entry.handle for entry in active]

        # Phase 3 per serving replica: free decode slots claim queue heads.
        progressed = False
        for entry in fleet.serving():
            if entry.claim_streams(now, self.ttft_slo_ms):
                progressed = True

        # Phase 4: drained replicas that have gone idle leave the fleet.
        fleet.retire_idle(now)

        if progressed:
            continue

        # Advance the global clock to the earliest future event.
        wake_times: List[float] = list(boot_times)
        if next_arrival < num_sequences:
            wake_times.append(pending[next_arrival].arrival_ms)
        for entry in fleet.serving():
            wake_times.extend(t for t in entry.slots if t > now + 1e-9)
        future = [t for t in wake_times if np.isfinite(t) and t > now + 1e-9]
        if not future:
            break   # nothing can happen anymore
        now = min(future)

    end = max((e.last_completion_ms for e in fleet.entries
               if np.isfinite(e.last_completion_ms)), default=start)
    return self._collect(fleet, start, end)


def seed_disagg_run(platform, workload, policy_factory: PolicyFactory):
    """The pre-kernel ``DisaggregatedPlatform.run`` loop, verbatim."""
    from repro.generative.sequences import SequenceSample
    from repro.serving.disagg import PrefillFleetState

    self = platform
    self.prefill_balancer.reset()
    self.decode_balancer.reset()
    self.prefill_autoscaler.reset()
    self.decode_autoscaler.reset()
    self.prefill_autoscaler.set_bounds(self.prefill_min, self.prefill_max)
    self.decode_autoscaler.set_bounds(self.decode_min, self.decode_max)

    pending = sorted(workload.sequences,
                     key=lambda s: (s.arrival_ms, s.sequence_id))
    num_sequences = len(pending)
    start = pending[0].arrival_ms if pending else 0.0
    mean_tokens = workload.mean_output_length() or 1.0
    mean_prompt = getattr(workload, "mean_prompt_length", lambda: 0.0)() or 1.0

    prefill_fleet = PrefillFleetState()
    for profile in self.prefill_profiles:
        prefill_fleet.add(self.prefill_model, profile, self.prefill_batch,
                          mean_prompt, start)
    decode_fleet = GenerativeFleetState()
    for engine, profile in zip(self.decode_engines, self.decode_profiles):
        decode_fleet.add(engine, policy_factory(decode_fleet.next_ordinal()),
                         profile, mean_tokens, start)

    if num_sequences == 0:
        return self._collect(prefill_fleet, decode_fleet, {}, {}, start, start)

    #: (ready_ms, sequence_id, sample) — KV transfer complete, decodeable.
    handoff: List[Tuple[float, int, SequenceSample]] = []
    prefill_delays: Dict[int, float] = {}
    transfer_delays: Dict[int, float] = {}
    prefill_boots: List[float] = []
    decode_boots: List[float] = []
    next_arrival = 0
    now = start

    def pool_scaling(fleet, autoscaler, handles, boots, low, high):
        """Shared per-pool autoscaler application (boot or drain)."""
        active = fleet.active()
        desired = int(autoscaler.desired_replicas(now, handles))
        desired = max(low, min(high, desired))
        provisioned = len(active) + len(boots)
        if desired > provisioned:
            delay = max(float(autoscaler.provision_delay_ms), 1e-6)
            boots.extend([now + delay] * (desired - provisioned))
        elif desired < len(active):
            boots.clear()
            for entry in sorted(active,
                                key=lambda e: -e.replica_id)[:len(active) - desired]:
                fleet.drain(entry, now)

    while (next_arrival < num_sequences
           or any(e.queue or e.in_flight for e in prefill_fleet.serving())
           or handoff
           or any(e.queue or e.busy_slots(now) for e in decode_fleet.serving())):
        # Phase 0: provisioning completes in either pool.
        for boots, fleet, add_fn in (
                (prefill_boots, prefill_fleet, self._add_prefill),
                (decode_boots, decode_fleet, self._add_decode)):
            due = sum(1 for t in boots if t <= now + 1e-9)
            if due:
                boots[:] = [t for t in boots if t > now + 1e-9]
                for _ in range(due):
                    add_fn(fleet, policy_factory, mean_tokens, mean_prompt,
                           now)

        prefill_active = prefill_fleet.active()
        for position, entry in enumerate(prefill_active):
            entry.handle.index = position
        prefill_handles = [e.handle for e in prefill_active]

        # Phase 1: admit arrivals into the prefill pool.
        admitted = 0
        while (next_arrival < num_sequences
               and pending[next_arrival].arrival_ms <= now + 1e-9):
            sample = pending[next_arrival]
            index = int(self.prefill_balancer.choose(sample, prefill_handles,
                                                     now))
            if not 0 <= index < len(prefill_active):
                raise ValueError(f"balancer {self.prefill_balancer.name!r} "
                                 f"chose prefill replica {index} of "
                                 f"{len(prefill_active)}")
            entry = prefill_active[index]
            entry.queue.append(sample)
            entry.dispatched += 1
            next_arrival += 1
            admitted += 1
        if admitted:
            self.prefill_autoscaler.observe_admitted(admitted, now)

        # Phase 2: the prefill pool's own autoscaler.
        pool_scaling(prefill_fleet, self.prefill_autoscaler,
                     prefill_handles, prefill_boots, self.prefill_min,
                     self.prefill_max)

        # Phase 3: prefill progress — finish due chunk-batches and start new.
        progressed = False
        for entry in prefill_fleet.serving():
            if entry.in_flight and entry.busy_until_ms <= now + 1e-9:
                done = entry.busy_until_ms
                for sample in entry.in_flight:
                    transfer = entry.model.transfer_ms(sample.prompt_tokens)
                    prefill_delays[sample.sequence_id] = done - sample.arrival_ms
                    transfer_delays[sample.sequence_id] = transfer
                    heapq.heappush(handoff, (done + transfer,
                                             sample.sequence_id, sample))
                entry.prefilled += len(entry.in_flight)
                entry.prefilled_tokens += sum(s.prompt_tokens
                                              for s in entry.in_flight)
                entry.in_flight = []
                progressed = True
            if entry.is_free(now) and entry.queue:
                batch = entry.queue[:entry.prefill_batch]
                del entry.queue[:len(batch)]
                tokens = sum(s.prompt_tokens for s in batch)
                duration = entry.model.batch_prefill_ms(tokens) / entry.profile.speed
                entry.in_flight = batch
                entry.busy_until_ms = now + duration
                entry.last_completion_ms = max(entry.last_completion_ms,
                                               now + duration)
                progressed = True

        # Phase 4: handoff — transferred sequences dispatch to decode.
        decode_active = decode_fleet.active()
        for position, entry in enumerate(decode_active):
            entry.handle.index = position
        decode_handles = [e.handle for e in decode_active]
        moved = 0
        while handoff and handoff[0][0] <= now + 1e-9:
            _, _, sample = heapq.heappop(handoff)
            index = int(self.decode_balancer.choose(sample, decode_handles,
                                                    now))
            if not 0 <= index < len(decode_active):
                raise ValueError(f"balancer {self.decode_balancer.name!r} "
                                 f"chose decode replica {index} of "
                                 f"{len(decode_active)}")
            entry = decode_active[index]
            entry.queue.append(sample)
            entry.dispatched += 1
            moved += 1
        if moved:
            self.decode_autoscaler.observe_admitted(moved, now)
            progressed = True

        # Phase 5: the decode pool's own autoscaler.
        pool_scaling(decode_fleet, self.decode_autoscaler, decode_handles,
                     decode_boots, self.decode_min, self.decode_max)

        # Phase 6: free decode slots claim queue heads.
        for entry in decode_fleet.serving():
            if entry.claim_streams(now, self.ttft_slo_ms):
                progressed = True

        # Phase 7: drained replicas that have gone idle leave their pool.
        prefill_fleet.retire_idle(now)
        decode_fleet.retire_idle(now)

        if progressed:
            continue

        # Phase 8: advance the shared clock to the earliest future event.
        wake: List[float] = list(prefill_boots) + list(decode_boots)
        if next_arrival < num_sequences:
            wake.append(pending[next_arrival].arrival_ms)
        for entry in prefill_fleet.serving():
            if entry.in_flight:
                wake.append(entry.busy_until_ms)
        if handoff:
            wake.append(handoff[0][0])
        for entry in decode_fleet.serving():
            wake.extend(t for t in entry.slots if t > now + 1e-9)
        future = [t for t in wake if np.isfinite(t) and t > now + 1e-9]
        if not future:
            break   # nothing can happen anymore
        now = min(future)

    end = max((e.last_completion_ms for e in decode_fleet.entries
               if np.isfinite(e.last_completion_ms)), default=start)
    return self._collect(prefill_fleet, decode_fleet, prefill_delays,
                         transfer_delays, start, end)
