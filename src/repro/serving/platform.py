"""Base event-driven serving platform.

A platform owns the request queue and the (single) accelerator of one model
replica.  Its job is batching policy: decide *when* to drain queued requests
and *how many* to serve together.  The actual forward pass is delegated to an
executor callback so that the same platform code serves vanilla models,
Apparate-managed models and the baselines.

The executor receives the formed batch and must return the accelerator
occupancy time plus, for every request in the batch, the offset (from batch
start) at which its *result* is released and bookkeeping about exits.  For a
vanilla model every result is released when the batch finishes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.models.execution import ModelExecutor
from repro.serving.metrics import ServingMetrics
from repro.serving.request import Request, Response

__all__ = ["BatchResult", "BatchExecutorFn", "ServingPlatform", "VanillaExecutor"]


@dataclass
class BatchResult:
    """What an executor reports back for one batch."""

    gpu_time_ms: float
    #: per-request offset (from batch start) at which the result is released.
    result_offsets_ms: List[float]
    #: per-request exit flags (False for vanilla serving).
    exited: List[bool] = field(default_factory=list)
    #: per-request exit depths (None when not exited).
    exit_depths: List[Optional[float]] = field(default_factory=list)
    #: per-request agreement with the original model's prediction.
    correct: List[bool] = field(default_factory=list)

    def __post_init__(self) -> None:
        n = len(self.result_offsets_ms)
        if not self.exited:
            self.exited = [False] * n
        if not self.exit_depths:
            self.exit_depths = [None] * n
        if not self.correct:
            self.correct = [True] * n


class BatchExecutorFn(Protocol):
    """Signature executors must implement."""

    def __call__(self, batch: Sequence[Request], batch_start_ms: float) -> BatchResult:
        ...  # pragma: no cover - protocol definition


class VanillaExecutor:
    """Executor serving the original model without any ramps."""

    def __init__(self, executor: ModelExecutor) -> None:
        self.executor = executor

    def __call__(self, batch: Sequence[Request], batch_start_ms: float) -> BatchResult:
        gpu_time = self.executor.vanilla_batch_time_ms(len(batch))
        return BatchResult(gpu_time_ms=gpu_time,
                           result_offsets_ms=[gpu_time] * len(batch))


class ServingPlatform(abc.ABC):
    """Common machinery of the event-driven platform simulators.

    Subclasses implement :meth:`select_batch`, which inspects the queue and
    the current time and returns either a batch to serve now or the time at
    which the platform wants to be woken up again (to wait for more requests).
    """

    def __init__(self, max_batch_size: int = 16, drop_expired: bool = False) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.max_batch_size = int(max_batch_size)
        self.drop_expired = bool(drop_expired)

    # ------------------------------------------------------------ batch policy
    @abc.abstractmethod
    def select_batch(self, queue: List[Request], now_ms: float) -> Tuple[List[Request], float]:
        """Return (batch, wake_up_time).

        An empty batch with a finite wake-up time means "wait"; an empty batch
        with ``wake_up <= now`` must never be returned when the queue is
        non-empty (the run loop guards against livelock by forcing progress).
        """

    # --------------------------------------------------------------- main loop
    def run(self, requests: Sequence[Request], executor: BatchExecutorFn) -> ServingMetrics:
        """Serve all requests and return the aggregated metrics."""
        metrics = ServingMetrics()
        pending = sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))
        num_requests = len(pending)
        if num_requests == 0:
            return metrics

        queue: List[Request] = []
        next_arrival = 0
        now = pending[0].arrival_ms

        while next_arrival < num_requests or queue:
            # Admit everything that has arrived by now.
            while next_arrival < num_requests and pending[next_arrival].arrival_ms <= now + 1e-9:
                queue.append(pending[next_arrival])
                next_arrival += 1

            if not queue:
                now = pending[next_arrival].arrival_ms
                continue

            if self.drop_expired:
                still_valid: List[Request] = []
                for request in queue:
                    if now > request.deadline_ms():
                        metrics.add_response(Response(
                            request_id=request.request_id,
                            arrival_ms=request.arrival_ms,
                            scheduled_ms=now, completion_ms=now,
                            queueing_ms=now - request.arrival_ms,
                            serving_ms=0.0, latency_ms=now - request.arrival_ms,
                            batch_size=0, dropped=True))
                    else:
                        still_valid.append(request)
                queue = still_valid
                if not queue:
                    continue

            batch, wake_up = self.select_batch(queue, now)
            if not batch:
                # The policy wants to wait for more requests (or a timeout).
                next_event = pending[next_arrival].arrival_ms if next_arrival < num_requests else np.inf
                target = min(wake_up, next_event)
                if not np.isfinite(target) or target <= now + 1e-9:
                    # Nothing left to wait for: force progress with what we have.
                    batch = queue[: self.max_batch_size]
                else:
                    now = target
                    continue

            batch_ids = {r.request_id for r in batch}
            queue = [r for r in queue if r.request_id not in batch_ids]

            result = executor(batch, now)
            metrics.add_batch(result.gpu_time_ms)
            for idx, request in enumerate(batch):
                offset = float(result.result_offsets_ms[idx])
                completion = now + offset
                metrics.add_response(Response(
                    request_id=request.request_id,
                    arrival_ms=request.arrival_ms,
                    scheduled_ms=now,
                    completion_ms=completion,
                    queueing_ms=now - request.arrival_ms,
                    serving_ms=offset,
                    latency_ms=completion - request.arrival_ms,
                    batch_size=len(batch),
                    exited=bool(result.exited[idx]),
                    exit_depth=result.exit_depths[idx],
                    correct=bool(result.correct[idx]),
                ))
            now += result.gpu_time_ms

        first_arrival = pending[0].arrival_ms
        metrics.makespan_ms = max(now - first_arrival, 1e-9)
        return metrics
