"""Base event-driven serving platform.

A platform owns the request queue and the (single) accelerator of one model
replica.  Its job is batching policy: decide *when* to drain queued requests
and *how many* to serve together.  The actual forward pass is delegated to an
executor callback so that the same platform code serves vanilla models,
Apparate-managed models and the baselines.

The executor receives the formed batch and must return the accelerator
occupancy time plus, for every request in the batch, the offset (from batch
start) at which its *result* is released and bookkeeping about exits.  For a
vanilla model every result is released when the batch finishes.

The event loop is *steppable*: the ``admit`` / ``expire`` / ``select`` /
``dispatch`` / ``complete`` phases operate on an explicit :class:`ReplicaState`
so that a fleet scheduler can interleave many replica timelines on one global
clock (see :mod:`repro.serving.cluster`).  :meth:`ServingPlatform.run` composes
the same phases for the single-replica case.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Set, Tuple

import numpy as np

from repro.models.execution import ModelExecutor
from repro.obs.recorder import NULL_RECORDER
from repro.serving.metrics import ServingMetrics
from repro.serving.request import Request, Response

__all__ = ["BatchResult", "BatchExecutorFn", "ReplicaState", "ServingPlatform",
           "VanillaExecutor"]


@dataclass
class BatchResult:
    """What an executor reports back for one batch."""

    gpu_time_ms: float
    #: per-request offset (from batch start) at which the result is released.
    result_offsets_ms: List[float]
    #: per-request exit flags (False for vanilla serving).
    exited: List[bool] = field(default_factory=list)
    #: per-request exit depths (None when not exited).
    exit_depths: List[Optional[float]] = field(default_factory=list)
    #: per-request agreement with the original model's prediction.
    correct: List[bool] = field(default_factory=list)

    def __post_init__(self) -> None:
        n = len(self.result_offsets_ms)
        for name in ("exited", "exit_depths", "correct"):
            values = getattr(self, name)
            if values and len(values) != n:
                raise ValueError(
                    f"BatchResult.{name} has {len(values)} entries for a batch of "
                    f"{n} results; per-request fields must match result_offsets_ms")
        if not self.exited:
            self.exited = [False] * n
        if not self.exit_depths:
            self.exit_depths = [None] * n
        if not self.correct:
            self.correct = [True] * n


class BatchExecutorFn(Protocol):
    """Signature executors must implement."""

    def __call__(self, batch: Sequence[Request], batch_start_ms: float) -> BatchResult:
        ...  # pragma: no cover - protocol definition


class VanillaExecutor:
    """Executor serving the original model without any ramps."""

    def __init__(self, executor: ModelExecutor) -> None:
        self.executor = executor

    def __call__(self, batch: Sequence[Request], batch_start_ms: float) -> BatchResult:
        gpu_time = self.executor.vanilla_batch_time_ms(len(batch))
        return BatchResult(gpu_time_ms=gpu_time,
                           result_offsets_ms=[gpu_time] * len(batch))


@dataclass
class ReplicaState:
    """Mutable serving state of one replica's queue and accelerator.

    The single-replica :meth:`ServingPlatform.run` loop owns one of these; a
    cluster scheduler owns one per replica and steps them on a shared clock.
    ``responded_ids`` guards the conservation invariant: every request is
    answered (served or dropped) exactly once.
    """

    queue: List[Request] = field(default_factory=list)
    metrics: ServingMetrics = field(default_factory=ServingMetrics)
    #: time at which the accelerator finishes its current batch.
    busy_until_ms: float = -np.inf
    #: arrival time of the first request routed to this replica.
    first_arrival_ms: Optional[float] = None
    #: time of the last completion or drop on this replica.
    last_event_ms: float = -np.inf
    #: size of the batch currently occupying the accelerator (until busy_until_ms).
    serving_batch_size: int = 0
    responded_ids: Set[int] = field(default_factory=set)
    #: replica ordinal stamped onto recorded spans (0 for single-replica runs).
    obs_replica: int = 0

    def queue_length(self) -> int:
        return len(self.queue)

    def idle_at(self, now_ms: float) -> bool:
        return self.busy_until_ms <= now_ms + 1e-9

    def finalize_makespan(self) -> None:
        """Stamp the replica's metrics with its observed wall-clock span."""
        if self.first_arrival_ms is None or not np.isfinite(self.last_event_ms):
            return
        self.metrics.makespan_ms = max(self.last_event_ms - self.first_arrival_ms, 1e-9)


class ServingPlatform(abc.ABC):
    """Common machinery of the event-driven platform simulators.

    Subclasses implement :meth:`select_batch`, which inspects the queue and
    the current time and returns either a batch to serve now or the time at
    which the platform wants to be woken up again (to wait for more requests).
    """

    def __init__(self, max_batch_size: int = 16, drop_expired: bool = False) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.max_batch_size = int(max_batch_size)
        self.drop_expired = bool(drop_expired)
        #: Span hooks; the shared no-op recorder unless a run installs one.
        self.obs = NULL_RECORDER

    # ------------------------------------------------------------ batch policy
    @abc.abstractmethod
    def select_batch(self, queue: List[Request], now_ms: float) -> Tuple[List[Request], float]:
        """Return (batch, wake_up_time).

        An empty batch with a finite wake-up time means "wait"; an empty batch
        with ``wake_up <= now`` must never be returned when the queue is
        non-empty (the run loop guards against livelock by forcing progress).
        """

    def predicted_batch_time_ms(self, batch_size: int) -> Optional[float]:
        """Estimated accelerator time for a batch, or None without a latency model.

        Load balancers use this to translate queue depth into expected work
        (the ``least_work_left`` policy); platforms without a profile fall
        back to queue-length comparisons.
        """
        return None

    # ------------------------------------------------------------ event phases
    def new_state(self) -> ReplicaState:
        """Fresh per-replica state for one serving run."""
        return ReplicaState()

    def admit(self, state: ReplicaState, request: Request) -> None:
        """Phase 1: a request arrives (or is routed here) and joins the queue."""
        if state.first_arrival_ms is None or request.arrival_ms < state.first_arrival_ms:
            state.first_arrival_ms = request.arrival_ms
        state.queue.append(request)
        obs = self.obs
        if obs.enabled:
            # Idempotent: a crash-requeued request keeps its original span
            # and is annotated with the reroute by the cluster runner.
            obs.admit(request.request_id, request.arrival_ms, pool="serve",
                      replica=state.obs_replica)

    def expire(self, state: ReplicaState, now_ms: float) -> None:
        """Phase 2: drop queued requests whose SLO already expired.

        Each dropped request is recorded exactly once (``responded_ids``) and
        removed from the queue, so it can never also be served.
        """
        if not self.drop_expired:
            return
        still_valid: List[Request] = []
        for request in state.queue:
            if now_ms > request.deadline_ms():
                if request.request_id in state.responded_ids:
                    continue
                state.responded_ids.add(request.request_id)
                state.metrics.record_drop(request, now_ms)
                state.last_event_ms = max(state.last_event_ms, now_ms)
                obs = self.obs
                if obs.enabled:
                    obs.phase(request.request_id, "queue", request.arrival_ms,
                              now_ms, replica=state.obs_replica)
                    obs.close(request.request_id, now_ms, outcome="dropped")
            else:
                still_valid.append(request)
        state.queue = still_valid

    def select(self, state: ReplicaState, now_ms: float) -> Tuple[List[Request], float]:
        """Phase 3: ask the batching policy what to serve (or when to wake)."""
        return self.select_batch(state.queue, now_ms)

    def force_batch(self, state: ReplicaState) -> List[Request]:
        """Livelock guard: nothing left to wait for, serve what we have."""
        return state.queue[: self.max_batch_size]

    def dispatch(self, state: ReplicaState, batch: Sequence[Request]) -> None:
        """Phase 4: move a selected batch out of the queue onto the accelerator."""
        batch_ids = {r.request_id for r in batch}
        state.queue = [r for r in state.queue if r.request_id not in batch_ids]

    def complete(self, state: ReplicaState, batch: Sequence[Request],
                 result: BatchResult, start_ms: float) -> None:
        """Phase 5: record the executor's outcome for one batch."""
        state.metrics.add_batch(result.gpu_time_ms)
        responded = state.responded_ids
        for request in batch:
            request_id = request.request_id
            if request_id in responded:
                raise RuntimeError(
                    f"request {request_id} answered twice (conservation violation)")
            responded.add(request_id)
        state.metrics.record_batch(batch, result, start_ms)
        state.busy_until_ms = start_ms + result.gpu_time_ms
        state.serving_batch_size = len(batch)
        state.last_event_ms = max(state.last_event_ms, state.busy_until_ms)
        obs = self.obs
        if obs.enabled:
            # Span timestamps are exactly the values record_batch stored:
            # queue = arrival → batch start, serve = start → release, so the
            # closed span reconciles bit-for-bit with the metrics columns.
            replica = state.obs_replica
            batch_size = len(batch)
            for i, request in enumerate(batch):
                request_id = request.request_id
                release = start_ms + result.result_offsets_ms[i]
                obs.phase(request_id, "queue", request.arrival_ms, start_ms,
                          replica=replica)
                obs.phase(request_id, "serve", start_ms, release,
                          replica=replica)
                obs.close(request_id, release, outcome="served",
                          exited=bool(result.exited[i]),
                          batch_size=batch_size)

    # --------------------------------------------------------------- main loop
    def run(self, requests: Sequence[Request], executor: BatchExecutorFn) -> ServingMetrics:
        """Serve all requests and return the aggregated metrics."""
        state = self.new_state()
        pending = sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))
        num_requests = len(pending)
        if num_requests == 0:
            return state.metrics

        next_arrival = 0
        now = pending[0].arrival_ms

        while next_arrival < num_requests or state.queue:
            # Admit everything that has arrived by now.
            while next_arrival < num_requests and pending[next_arrival].arrival_ms <= now + 1e-9:
                self.admit(state, pending[next_arrival])
                next_arrival += 1

            if not state.queue:
                now = pending[next_arrival].arrival_ms
                continue

            self.expire(state, now)
            if not state.queue:
                continue

            batch, wake_up = self.select(state, now)
            if not batch:
                # The policy wants to wait for more requests (or a timeout).
                next_event = pending[next_arrival].arrival_ms if next_arrival < num_requests else np.inf
                target = min(wake_up, next_event)
                if not np.isfinite(target) or target <= now + 1e-9:
                    # Nothing left to wait for: force progress with what we have.
                    batch = self.force_batch(state)
                else:
                    now = target
                    continue

            self.dispatch(state, batch)
            result = executor(batch, now)
            self.complete(state, batch, result, now)
            now += result.gpu_time_ms

        first_arrival = pending[0].arrival_ms
        state.metrics.makespan_ms = max(now - first_arrival, 1e-9)
        return state.metrics
