"""Parallel decoding state and token-level feedback (§3.4).

When a token exits at a ramp, its hidden states are accumulated at that ramp
and its remaining layers are deferred; they execute batched alongside the
first subsequent non-exiting token (or a forced flush once too many tokens
have accumulated).  The same mechanism yields token-level accuracy feedback:
for each parallel-decoding instance, feedback is kept only up to the first
token whose exited result deviates from the original model — later tokens may
reflect cascading errors from inter-token dependencies and are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = ["TokenFeedback", "ParallelDecodingState", "truncate_feedback"]


@dataclass(frozen=True)
class TokenFeedback:
    """Per-token feedback record streamed to the controller."""

    sequence_id: int
    token_index: int
    error_score: float
    exited: bool
    correct: bool


def truncate_feedback(feedback: Sequence[TokenFeedback]) -> List[TokenFeedback]:
    """Keep feedback up to (and including) the first deviating exited token.

    Tokens after the first exited-and-wrong token are discarded because their
    behaviour may be contaminated by cascading errors (§3.4).
    """
    kept: List[TokenFeedback] = []
    for record in feedback:
        kept.append(record)
        if record.exited and not record.correct:
            break
    return kept


@dataclass
class ParallelDecodingState:
    """Deferred-computation bookkeeping for one sequence.

    Attributes
    ----------
    flush_limit:
        Maximum number of exited tokens whose tails may accumulate before a
        flush is forced (the paper flushes "once the ramp accumulates a
        pre-specified number of exited tokens", §4.4).
    """

    flush_limit: int = 8
    pending_tokens: int = 0
    pending_depth: float = 1.0
    total_deferred: int = 0
    total_flushes: int = 0

    def defer(self, depth_fraction: float) -> None:
        """Record that a token exited at ``depth_fraction`` and was deferred."""
        if self.pending_tokens == 0:
            self.pending_depth = float(depth_fraction)
        else:
            # Tails are all computed from the shallowest accumulated ramp so
            # a single batched pass covers every pending token.
            self.pending_depth = min(self.pending_depth, float(depth_fraction))
        self.pending_tokens += 1
        self.total_deferred += 1

    def needs_flush(self) -> bool:
        return self.pending_tokens >= self.flush_limit

    def flush(self) -> int:
        """Clear pending tails, returning how many tokens were flushed."""
        flushed = self.pending_tokens
        if flushed:
            self.total_flushes += 1
        self.pending_tokens = 0
        self.pending_depth = 1.0
        return flushed
