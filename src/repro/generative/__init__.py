"""Generative-LLM substrate: autoregressive decoding, parallel decoding, workloads.

Generative models add one complication to early exits (§3.4): each token needs
the key-value (KV) states of every preceding token, so when a token exits at a
ramp its remaining layers cannot simply be skipped — the next token would
stall waiting for KV states.  Apparate adopts parallel decoding: exited tokens
accumulate their hidden states at the ramp, and their remaining layers run
batched alongside the first subsequent non-exiting token.  This subpackage
provides the decode-step timing model, the parallel-decoding state machine,
token-level feedback extraction and synthetic generative workloads
(CNN/DailyMail-style summarization and SQuAD-style question answering).
"""

from repro.generative.sequences import (
    SequenceSample,
    GenerativeWorkload,
    make_generative_workload,
)
from repro.generative.decoding import DecodeTimingModel, TokenRecord
from repro.generative.parallel import ParallelDecodingState, TokenFeedback, truncate_feedback

__all__ = [
    "SequenceSample",
    "GenerativeWorkload",
    "make_generative_workload",
    "DecodeTimingModel",
    "TokenRecord",
    "ParallelDecodingState",
    "TokenFeedback",
    "truncate_feedback",
]
