"""Autoregressive decode-step timing model.

A decode step runs one token of every active sequence through the model.  The
timing model captures the quantities Apparate's generative mode cares about:

* per-step latency as a function of the decode batch size (continuous
  batching keeps the accelerator at the largest feasible batch);
* the fraction of a step saved when a token exits at a ramp of a given depth;
* the cost of running deferred tail layers (of previously exited tokens)
  batched alongside a later step (parallel decoding, §3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.models.zoo import ModelSpec

__all__ = ["TokenRecord", "DecodeTimingModel"]


@dataclass
class TokenRecord:
    """Timing and exit bookkeeping for one generated token."""

    sequence_id: int
    token_index: int
    release_ms: float
    tpt_ms: float
    exited: bool
    exit_depth: Optional[float]
    correct: bool


class DecodeTimingModel:
    """Latency model for decode steps of one generative model."""

    def __init__(self, spec: ModelSpec, ramp_overhead_fraction: float = 0.0) -> None:
        if not spec.is_generative:
            raise ValueError(f"{spec.name} is not a generative model")
        self.spec = spec
        self.ramp_overhead_fraction = float(ramp_overhead_fraction)

    # ----------------------------------------------------------------- steps
    def batch_scale(self, batch_size: int) -> float:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return 1.0 + self.spec.batch_marginal_cost * (batch_size - 1)

    def full_step_ms(self, batch_size: int) -> float:
        """Time of a decode step that runs the whole model for the batch."""
        return self.spec.bs1_latency_ms * self.batch_scale(batch_size)

    def partial_step_ms(self, batch_size: int, depth_fraction: float) -> float:
        """Time of a decode step that stops at ``depth_fraction`` (all exit)."""
        depth_fraction = min(max(depth_fraction, 0.0), 1.0)
        return self.full_step_ms(batch_size) * depth_fraction

    def ramp_overhead_ms(self, batch_size: int) -> float:
        """Per-step latency added by the (single) active ramp."""
        return self.full_step_ms(batch_size) * self.ramp_overhead_fraction

    # ------------------------------------------------------------ parallel decoding
    def deferred_tail_ms(self, depth_fraction: float, num_deferred: int,
                         batch_size: int) -> float:
        """Extra time to run deferred tail layers alongside a full step.

        The tail layers of ``num_deferred`` previously-exited tokens are
        batched with the current step's tokens; because the accelerator is
        already executing those layers for the non-exiting tokens, the
        marginal cost is only the batch-growth term, which is mild (§3.4).
        """
        if num_deferred <= 0:
            return 0.0
        tail_fraction = 1.0 - min(max(depth_fraction, 0.0), 1.0)
        tail_time_bs1 = self.spec.bs1_latency_ms * tail_fraction
        return tail_time_bs1 * self.spec.batch_marginal_cost * num_deferred

    def flush_step_ms(self, depth_fraction: float, num_deferred: int) -> float:
        """Time of a standalone flush of deferred tails (no piggyback step)."""
        if num_deferred <= 0:
            return 0.0
        tail_fraction = 1.0 - min(max(depth_fraction, 0.0), 1.0)
        return self.spec.bs1_latency_ms * tail_fraction * self.batch_scale(num_deferred)
