"""Autoregressive decode-step timing model.

A decode step runs one token of every active sequence through the model.  The
timing model captures the quantities Apparate's generative mode cares about:

* per-step latency as a function of the decode batch size (continuous
  batching keeps the accelerator at the largest feasible batch);
* the fraction of a step saved when a token exits at a ramp of a given depth;
* the cost of running deferred tail layers (of previously exited tokens)
  batched alongside a later step (parallel decoding, §3.4).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.models.zoo import ModelSpec

__all__ = ["TokenRecord", "DecodeTimingModel", "PrefillModel",
           "KVCacheAccountant", "kv_bytes_per_token"]


@dataclass
class TokenRecord:
    """Timing and exit bookkeeping for one generated token."""

    sequence_id: int
    token_index: int
    release_ms: float
    tpt_ms: float
    exited: bool
    exit_depth: Optional[float]
    correct: bool


class DecodeTimingModel:
    """Latency model for decode steps of one generative model."""

    def __init__(self, spec: ModelSpec, ramp_overhead_fraction: float = 0.0) -> None:
        if not spec.is_generative:
            raise ValueError(f"{spec.name} is not a generative model")
        self.spec = spec
        self.ramp_overhead_fraction = float(ramp_overhead_fraction)

    # ----------------------------------------------------------------- steps
    def batch_scale(self, batch_size: int) -> float:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return 1.0 + self.spec.batch_marginal_cost * (batch_size - 1)

    def full_step_ms(self, batch_size: int) -> float:
        """Time of a decode step that runs the whole model for the batch."""
        return self.spec.bs1_latency_ms * self.batch_scale(batch_size)

    def partial_step_ms(self, batch_size: int, depth_fraction: float) -> float:
        """Time of a decode step that stops at ``depth_fraction`` (all exit)."""
        depth_fraction = min(max(depth_fraction, 0.0), 1.0)
        return self.full_step_ms(batch_size) * depth_fraction

    def ramp_overhead_ms(self, batch_size: int) -> float:
        """Per-step latency added by the (single) active ramp."""
        return self.full_step_ms(batch_size) * self.ramp_overhead_fraction

    # ------------------------------------------------------------ parallel decoding
    def deferred_tail_ms(self, depth_fraction: float, num_deferred: int,
                         batch_size: int) -> float:
        """Extra time to run deferred tail layers alongside a full step.

        The tail layers of ``num_deferred`` previously-exited tokens are
        batched with the current step's tokens; because the accelerator is
        already executing those layers for the non-exiting tokens, the
        marginal cost is only the batch-growth term, which is mild (§3.4).
        """
        if num_deferred <= 0:
            return 0.0
        tail_fraction = 1.0 - min(max(depth_fraction, 0.0), 1.0)
        tail_time_bs1 = self.spec.bs1_latency_ms * tail_fraction
        return tail_time_bs1 * self.spec.batch_marginal_cost * num_deferred

    def flush_step_ms(self, depth_fraction: float, num_deferred: int) -> float:
        """Time of a standalone flush of deferred tails (no piggyback step)."""
        if num_deferred <= 0:
            return 0.0
        tail_fraction = 1.0 - min(max(depth_fraction, 0.0), 1.0)
        return self.spec.bs1_latency_ms * tail_fraction * self.batch_scale(num_deferred)


@dataclass(frozen=True)
class PrefillModel:
    """Chunked-prefill compute and KV-transfer cost of one generative model.

    Prefill runs the prompt through the model in chunks of
    ``tokens_per_chunk`` tokens; each chunk saturates the accelerator's
    compute, so a chunk costs about one full decode step
    (``chunk_time_factor`` scales that).  This makes prefill throughput
    per-replica vastly higher than decode throughput — the asymmetry that
    motivates disaggregating the two phases.

    Two deployment modes are priced:

    * **Dedicated prefill replica** (disaggregated pool): ``prefill_ms`` /
      ``batch_prefill_ms`` chunk times only, plus ``transfer_ms`` to ship the
      prompt's KV cache to a decode replica — bytes grow with
      ``prompt_tokens x layer depth x hidden width`` (K and V, fp16) over a
      ``transfer_gbps`` GB/s interconnect.
    * **In-slot prefill** (monolithic replica): the prompt's chunks compete
      with the replica's running decode streams for the same accelerator, so
      ``inslot_prefill_ms`` stretches the prefill by ``decode_interference``
      per concurrently busy decode slot.  No KV transfer is charged (the
      cache is produced where it is consumed).
    """

    spec: ModelSpec
    tokens_per_chunk: int = 256
    chunk_time_factor: float = 1.0
    transfer_gbps: float = 16.0
    decode_interference: float = 1.0

    def __post_init__(self) -> None:
        if not self.spec.is_generative:
            raise ValueError(f"{self.spec.name} is not a generative model")
        if int(self.tokens_per_chunk) < 1:
            raise ValueError(f"tokens_per_chunk must be >= 1, "
                             f"got {self.tokens_per_chunk}")
        if self.chunk_time_factor <= 0.0:
            raise ValueError(f"chunk_time_factor must be positive, "
                             f"got {self.chunk_time_factor}")
        if self.transfer_gbps <= 0.0:
            raise ValueError(f"transfer_gbps must be positive, "
                             f"got {self.transfer_gbps}")
        if self.decode_interference < 0.0:
            raise ValueError(f"decode_interference must be >= 0, "
                             f"got {self.decode_interference}")

    # ----------------------------------------------------------------- compute
    def chunk_time_ms(self) -> float:
        """Accelerator time of one fully packed prefill chunk."""
        return self.spec.bs1_latency_ms * self.chunk_time_factor

    def num_chunks(self, prompt_tokens: int) -> int:
        """Chunks needed for one prompt (0 for promptless sequences)."""
        if prompt_tokens <= 0:
            return 0
        return int(math.ceil(prompt_tokens / self.tokens_per_chunk))

    def prefill_ms(self, prompt_tokens: int) -> float:
        """Dedicated-replica prefill time of one prompt."""
        return self.num_chunks(prompt_tokens) * self.chunk_time_ms()

    def batch_prefill_ms(self, total_prompt_tokens: int) -> float:
        """Prefill time of a chunk-batch: several prompts packed into one
        chunk stream (prompts share chunk boundaries, so batching saves the
        per-prompt padding of the last chunk)."""
        if total_prompt_tokens <= 0:
            return 0.0
        chunks = int(math.ceil(total_prompt_tokens / self.tokens_per_chunk))
        return chunks * self.chunk_time_ms()

    def inslot_prefill_ms(self, prompt_tokens: int, busy_slots: int) -> float:
        """Prefill time on a monolithic replica with ``busy_slots`` decode
        streams in flight — compute contention stretches the chunks."""
        return self.prefill_ms(prompt_tokens) \
            * (1.0 + self.decode_interference * max(0, busy_slots))

    # ---------------------------------------------------------------- transfer
    def kv_bytes(self, prompt_tokens: int) -> int:
        """KV-cache bytes a prefilled prompt occupies (K+V, fp16 per layer)."""
        if prompt_tokens <= 0:
            return 0
        return int(prompt_tokens) * self.spec.num_blocks * self.spec.hidden_width * 4

    def transfer_ms(self, prompt_tokens: int) -> float:
        """Time to ship the prompt's KV cache prefill -> decode replica."""
        bytes_per_ms = self.transfer_gbps * 1e6
        return self.kv_bytes(prompt_tokens) / bytes_per_ms


def kv_bytes_per_token(spec: ModelSpec) -> int:
    """KV-cache bytes one token occupies (K+V, fp16 per layer) — the same
    per-token cost :meth:`PrefillModel.kv_bytes` charges per prompt token."""
    return spec.num_blocks * spec.hidden_width * 4


@dataclass
class _ResidentSequence:
    """One sequence's KV residency on a replica (its non-shared tokens)."""

    sequence_id: int
    unique_tokens: int
    prefix_group: Optional[int]
    completion_ms: float


class KVCacheAccountant:
    """Per-replica KV-cache occupancy, prefix reuse and LRU eviction.

    The accountant tracks cache residency in **tokens** against a byte
    capacity.  A sequence admitted to a decode slot claims its full footprint
    (prompt plus expected output tokens); tokens of a shared prefix group are
    stored once per group and every group member references them, so routing
    group members to the same replica both skips re-prefill of the shared
    tokens (the **hit**) and shrinks the fleet-wide footprint.

    Residency outlives completion: a finished sequence's cache stays until
    evicted, which is what makes prefix reuse across sequences possible.
    When occupancy exceeds capacity, eviction scans residents oldest-first
    (LRU by admission): finished sequences are evicted for free; a
    still-running victim loses its cache and must pay **recompute** — a
    re-prefill of its evicted context, charged as an extension of its decode
    slot — before it can finish.  A victim is dropped from residency when
    evicted, so each sequence pays recompute at most once.  The
    most-recently-admitted sequence is never selected, so eviction always
    terminates; a single sequence larger than the whole capacity is allowed
    to oversubscribe.
    """

    def __init__(self, capacity_bytes: float, bytes_per_token: float,
                 recompute_ms_per_token: float = 0.0) -> None:
        if not (capacity_bytes > 0.0) or not math.isfinite(capacity_bytes):
            raise ValueError(f"capacity_bytes must be positive and finite, "
                             f"got {capacity_bytes}")
        if not (bytes_per_token > 0.0):
            raise ValueError(f"bytes_per_token must be positive, "
                             f"got {bytes_per_token}")
        if recompute_ms_per_token < 0.0:
            raise ValueError(f"recompute_ms_per_token must be >= 0, "
                             f"got {recompute_ms_per_token}")
        self.capacity_bytes = float(capacity_bytes)
        self.bytes_per_token = float(bytes_per_token)
        self.capacity_tokens = float(capacity_bytes) / float(bytes_per_token)
        self.recompute_ms_per_token = float(recompute_ms_per_token)
        self.used_tokens = 0.0
        self._resident: "OrderedDict[int, _ResidentSequence]" = OrderedDict()
        self._group_tokens: Dict[int, int] = {}
        self._group_refs: Dict[int, int] = {}
        # Conserved counters, copied into the replica's metrics at collection.
        self.hit_tokens = 0
        self.miss_tokens = 0
        self.evictions = 0
        self.evicted_tokens = 0
        self.recompute_tokens = 0

    def __len__(self) -> int:
        return len(self._resident)

    # ------------------------------------------------------------- admission
    def prefix_hit_tokens(self, sample) -> int:
        """Shared-prefix tokens already resident for ``sample``'s group."""
        group = getattr(sample, "prefix_group", None)
        if group is None:
            return 0
        shared = int(getattr(sample, "shared_prefix_tokens", 0))
        return min(self._group_tokens.get(group, 0), shared)

    def admission_tokens(self, sample) -> int:
        """Tokens admitting ``sample`` would add to the cache footprint."""
        group = getattr(sample, "prefix_group", None)
        shared = int(getattr(sample, "shared_prefix_tokens", 0)) \
            if group is not None else 0
        unique = int(sample.prompt_tokens) - shared + int(sample.num_tokens)
        prefix_new = shared if group is not None \
            and group not in self._group_tokens else 0
        return max(0, unique) + prefix_new

    def overflow_tokens(self, sample) -> float:
        """Tokens by which admitting ``sample`` would exceed capacity."""
        return max(0.0, self.used_tokens + self.admission_tokens(sample)
                   - self.capacity_tokens)

    def admit(self, sample, completion_ms: float) -> int:
        """Claim ``sample``'s cache footprint; returns the prefix-hit tokens
        (prompt tokens whose prefill is skipped because they are resident)."""
        group = getattr(sample, "prefix_group", None)
        shared = int(getattr(sample, "shared_prefix_tokens", 0)) \
            if group is not None else 0
        hit = self.prefix_hit_tokens(sample)
        if group is not None and group not in self._group_tokens:
            self._group_tokens[group] = shared
            self._group_refs[group] = 0
            self.used_tokens += shared
        if group is not None:
            self._group_refs[group] += 1
        unique = max(0, int(sample.prompt_tokens) - shared
                     + int(sample.num_tokens))
        self.used_tokens += unique
        self._resident[int(sample.sequence_id)] = _ResidentSequence(
            sequence_id=int(sample.sequence_id), unique_tokens=unique,
            prefix_group=group, completion_ms=float(completion_ms))
        self.hit_tokens += hit
        self.miss_tokens += max(0, int(sample.prompt_tokens) - hit)
        return hit

    def used_bytes(self) -> float:
        """Resident occupancy in bytes (the ``kv_used_bytes`` gauge)."""
        return self.used_tokens * self.bytes_per_token

    # -------------------------------------------------------------- eviction
    def over_capacity(self) -> bool:
        return self.used_tokens > self.capacity_tokens

    def needs_eviction(self) -> bool:
        """Over capacity with at least one evictable (non-MRU) resident."""
        return self.over_capacity() and len(self._resident) > 1

    def _free(self, victim: _ResidentSequence) -> int:
        freed = victim.unique_tokens
        group = victim.prefix_group
        if group is not None:
            self._group_refs[group] -= 1
            if self._group_refs[group] <= 0:
                freed += self._group_tokens.pop(group)
                del self._group_refs[group]
        self.used_tokens -= freed
        return freed

    def evict_to_fit(self, now_ms: float) -> List[Tuple[int, float]]:
        """Evict LRU residents until occupancy fits (or only the MRU is left).

        Finished sequences (completion at or before ``now_ms``) go first and
        cost nothing.  If occupancy still exceeds capacity, still-running
        victims are evicted oldest-first; each returns ``(sequence_id,
        recompute_ms)`` — the re-prefill charge its decode slot must absorb.
        """
        charges: List[Tuple[int, float]] = []
        if not self.over_capacity():
            return charges
        order = list(self._resident)
        mru = order[-1] if order else None
        for active_pass in (False, True):
            for seq_id in order:
                if not self.over_capacity():
                    return charges
                if seq_id == mru or seq_id not in self._resident:
                    continue
                victim = self._resident[seq_id]
                running = victim.completion_ms > now_ms
                if running != active_pass:
                    continue
                del self._resident[seq_id]
                freed = self._free(victim)
                self.evictions += 1
                self.evicted_tokens += freed
                if running:
                    self.recompute_tokens += victim.unique_tokens
                    charges.append((seq_id, victim.unique_tokens
                                    * self.recompute_ms_per_token))
        return charges
