"""Synthetic generative workloads (CNN/DailyMail- and SQuAD-like).

Each request is a *sequence*: a prompt followed by a number of generated
tokens.  Per-token difficulty evolves with strong auto-regressive continuity
(shared state across tokens of one sequence), which is why the paper finds
generative adaptation closes most of the gap to the optimal (§4.3).  The two
presets differ in output length and difficulty statistics:

* ``cnn-dailymail`` — summarization: longer outputs (~60 tokens), moderate
  difficulty with many easy function-word tokens.
* ``squad`` — question answering: short outputs (~12 tokens), slightly harder
  tokens on average.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.utils.rng import RngFactory
from repro.workloads.arrivals import (diurnal_arrivals,
                                      flash_crowd_arrivals, poisson_arrivals,
                                      trace_arrivals)

__all__ = ["SequenceSample", "GenerativeWorkload", "make_generative_workload",
           "GENERATIVE_DATASET_PRESETS"]

GENERATIVE_DATASET_PRESETS: Dict[str, Dict[str, float]] = {
    "cnn-dailymail": {"mean_output_tokens": 60, "min_output_tokens": 16,
                      "mean_prompt_tokens": 512, "min_prompt_tokens": 96,
                      "difficulty_mean": 0.22, "difficulty_spread": 0.09,
                      "token_volatility": 0.06},
    "squad": {"mean_output_tokens": 12, "min_output_tokens": 3,
              "mean_prompt_tokens": 160, "min_prompt_tokens": 32,
              "difficulty_mean": 0.30, "difficulty_spread": 0.12,
              "token_volatility": 0.08},
}


@dataclass
class SequenceSample:
    """One generative request: per-token raw difficulties and sharpness.

    ``prompt_tokens`` is the prompt length the sequence was conditioned on.
    The decode-only engine ignores it (prompts are assumed pre-processed);
    the prefill/decode disaggregated platform charges chunked prefill compute
    and KV-transfer time for it (see :mod:`repro.serving.disagg`).
    """

    sequence_id: int
    arrival_ms: float
    token_difficulty: np.ndarray
    token_sharpness: np.ndarray
    prompt_tokens: int = 0
    #: tenant class tag; "default" means untenanted.  The tenancy layer
    #: honours pre-tagged sequences whose tag names a configured tenant.
    tenant: str = "default"
    #: shared-prefix structure: sequences of one ``prefix_group`` open with
    #: the same ``shared_prefix_tokens``-token prefix (system prompt / few-shot
    #: header reuse).  ``None`` means no shared prefix; the shared tokens are
    #: *included* in ``prompt_tokens``.
    prefix_group: Optional[int] = None
    shared_prefix_tokens: int = 0

    def __post_init__(self) -> None:
        if int(self.prompt_tokens) < 0:
            raise ValueError(f"prompt_tokens must be >= 0, got {self.prompt_tokens}")
        self.prompt_tokens = int(self.prompt_tokens)
        self.shared_prefix_tokens = int(self.shared_prefix_tokens)
        if self.prefix_group is None:
            if self.shared_prefix_tokens != 0:
                raise ValueError("shared_prefix_tokens requires a prefix_group")
        elif not 0 <= self.shared_prefix_tokens <= self.prompt_tokens:
            raise ValueError(f"shared_prefix_tokens must be in "
                             f"[0, prompt_tokens={self.prompt_tokens}], "
                             f"got {self.shared_prefix_tokens}")
        self.token_difficulty = np.clip(np.asarray(self.token_difficulty, dtype=float), 0.0, 1.0)
        self.token_sharpness = np.asarray(self.token_sharpness, dtype=float)
        if self.token_difficulty.shape != self.token_sharpness.shape:
            raise ValueError("token difficulty and sharpness must have equal length")

    @property
    def num_tokens(self) -> int:
        return int(self.token_difficulty.size)


@dataclass
class GenerativeWorkload:
    """A stream of generative requests with arrival times."""

    name: str
    sequences: List[SequenceSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sequences)

    def total_tokens(self) -> int:
        return sum(s.num_tokens for s in self.sequences)

    def mean_output_length(self) -> float:
        if not self.sequences:
            return 0.0
        return self.total_tokens() / len(self.sequences)

    def total_prompt_tokens(self) -> int:
        return sum(s.prompt_tokens for s in self.sequences)

    def mean_prompt_length(self) -> float:
        if not self.sequences:
            return 0.0
        return self.total_prompt_tokens() / len(self.sequences)


def make_generative_workload(dataset: str = "cnn-dailymail", num_sequences: int = 200,
                             rate_qps: float = 2.0, seed: int = 0,
                             drift_amplitude: float = 0.15, drift_mode: str = "walk",
                             arrival_process: str = "poisson",
                             diurnal_period_s: float = 60.0,
                             preset_overrides: Optional[Dict[str, float]] = None,
                             prefix_groups: int = 0,
                             prefix_share: float = 0.8,
                             prefix_tokens: int = 256) -> GenerativeWorkload:
    """Create a synthetic generative workload with Poisson arrivals (§4.1).

    ``drift_amplitude`` controls how much the stream's topic difficulty drifts
    over time; ``drift_mode`` selects a slow random walk of the per-sequence
    mean (``"walk"``) or a monotone trend toward harder content (``"trend"``).
    Drift is what makes one-time-tuned baselines such as FREE lose accuracy
    while Apparate's runtime adaptation holds the constraint (§4.4).

    ``arrival_process`` selects ``"poisson"`` (the paper's setup),
    ``"diurnal"`` — a compressed day/night cycle whose per-second rate traces
    a raised cosine between ``rate_qps / 4`` and ``7/4 * rate_qps`` (mean
    ``rate_qps``) every ``diurnal_period_s`` seconds, the workload shape the
    autoscaling and pool-sizing studies exercise — ``"flash_crowd"`` (Poisson
    baseline with a sudden sustained 4x spike), or ``"trace:<path>"``
    (replay a CSV of arrival timestamps in ms).

    ``prefix_groups`` adds shared-prefix structure (system-prompt / few-shot
    header reuse): with ``G > 0`` groups, each sequence joins a uniformly
    chosen group with probability ``prefix_share`` and *prepends* that
    group's shared prefix (length ~ Poisson around ``prefix_tokens``) to its
    prompt.  The structure draws from a dedicated ``prefix`` RNG stream, so
    every existing trace (``prefix_groups=0``, the default) stays
    bit-identical.
    """
    rng_factory = RngFactory(seed)
    preset = dict(GENERATIVE_DATASET_PRESETS.get(dataset, GENERATIVE_DATASET_PRESETS["cnn-dailymail"]))
    if preset_overrides:
        preset.update(preset_overrides)

    length_rng = rng_factory.generator(f"gen:{dataset}:lengths")
    prompt_rng = rng_factory.generator(f"gen:{dataset}:prompts")
    difficulty_rng = rng_factory.generator(f"gen:{dataset}:difficulty")
    drift_rng = rng_factory.generator(f"gen:{dataset}:drift")
    arrival_rng = rng_factory.generator(f"gen:{dataset}:arrivals")
    if arrival_process == "poisson":
        arrivals = poisson_arrivals(num_sequences, rate_qps, arrival_rng)
    elif arrival_process == "diurnal":
        arrivals = diurnal_arrivals(num_sequences, low_qps=0.25 * rate_qps,
                                    high_qps=1.75 * rate_qps,
                                    period_s=diurnal_period_s, rng=arrival_rng)
    elif arrival_process == "flash_crowd":
        arrivals = flash_crowd_arrivals(num_sequences, rate_qps, arrival_rng)
    elif arrival_process.startswith("trace:"):
        arrivals = trace_arrivals(num_sequences,
                                  arrival_process[len("trace:"):])
    else:
        raise ValueError(f"unknown arrival_process {arrival_process!r}; "
                         "choose from ('poisson', 'diurnal', 'flash_crowd', "
                         "'trace:<path>')")

    # Per-sequence difficulty drift over the stream (topic drift).
    drift = np.zeros(num_sequences)
    if num_sequences > 1 and drift_amplitude > 0.0:
        if drift_mode == "trend":
            drift = np.linspace(0.0, drift_amplitude, num_sequences)
        elif drift_mode == "walk":
            steps = drift_rng.normal(0.0, drift_amplitude / np.sqrt(num_sequences),
                                     size=num_sequences)
            drift = np.clip(np.cumsum(steps), -drift_amplitude, drift_amplitude)
        else:
            raise ValueError(f"unknown drift_mode {drift_mode!r}")

    # Shared-prefix structure on its own named stream: drawing it only when
    # enabled leaves every other stream's draws untouched.
    if int(prefix_groups) < 0:
        raise ValueError(f"prefix_groups must be >= 0, got {prefix_groups}")
    group_of: List[Optional[int]] = [None] * num_sequences
    shared_of = [0] * num_sequences
    if int(prefix_groups) > 0:
        if not 0.0 < float(prefix_share) <= 1.0:
            raise ValueError(f"prefix_share must be in (0, 1], "
                             f"got {prefix_share}")
        if int(prefix_tokens) < 1:
            raise ValueError(f"prefix_tokens must be >= 1, got {prefix_tokens}")
        prefix_rng = rng_factory.generator(f"gen:{dataset}:prefix")
        group_lengths = [int(max(16, prefix_rng.poisson(int(prefix_tokens))))
                         for _ in range(int(prefix_groups))]
        for seq_id in range(num_sequences):
            if prefix_rng.random() < float(prefix_share):
                group = int(prefix_rng.integers(int(prefix_groups)))
                group_of[seq_id] = group
                shared_of[seq_id] = group_lengths[group]

    sequences: List[SequenceSample] = []
    for seq_id in range(num_sequences):
        length = int(max(preset["min_output_tokens"],
                         length_rng.poisson(preset["mean_output_tokens"])))
        prompt = int(max(preset["min_prompt_tokens"],
                         prompt_rng.poisson(preset["mean_prompt_tokens"])))
        base = float(np.clip(difficulty_rng.normal(preset["difficulty_mean"] + drift[seq_id],
                                                   preset["difficulty_spread"]), 0.02, 0.95))
        # Tokens within a sequence follow a small random walk around the
        # sequence's base difficulty (auto-regressive continuity).
        steps = difficulty_rng.normal(0.0, preset["token_volatility"], size=length)
        difficulties = np.clip(base + np.cumsum(steps) * 0.3, 0.0, 1.0)
        sharpness = difficulty_rng.uniform(0.03, 0.10, size=length)
        sequences.append(SequenceSample(
            sequence_id=seq_id,
            arrival_ms=float(arrivals[seq_id]),
            token_difficulty=difficulties,
            token_sharpness=sharpness,
            prompt_tokens=prompt + shared_of[seq_id],
            prefix_group=group_of[seq_id],
            shared_prefix_tokens=shared_of[seq_id],
        ))
    return GenerativeWorkload(name=dataset, sequences=sequences)
