"""Early-exit mechanism library: ramps, placement, tuning and adjustment.

This subpackage implements the EE machinery that :mod:`repro.core` assembles
into the end-to-end Apparate system:

* :mod:`repro.exits.ramps` — ramp specifications and architectures;
* :mod:`repro.exits.placement` — cut-vertex candidate enumeration, uniform
  initial spacing and ramp-budget accounting (§3.1);
* :mod:`repro.exits.training` — independent, parallel ramp training on
  bootstrap data (§3.1);
* :mod:`repro.exits.config` — the deployed EE configuration (active ramps and
  their thresholds);
* :mod:`repro.exits.evaluation` — replay-based evaluation of candidate
  configurations from recorded per-ramp observations (§3.2);
* :mod:`repro.exits.thresholds` — Algorithm 1, greedy hill-climbing threshold
  tuning with MIMD step sizes, plus a grid-search reference;
* :mod:`repro.exits.adjustment` — Algorithm 2, utility-driven adjustment of
  the active ramp set (§3.3).
"""

from repro.exits.ramps import RampSpec, RampStyle, ramp_overhead_fraction, ramp_parameter_count
from repro.exits.placement import RampCatalog, build_ramp_catalog, initial_ramp_selection
from repro.exits.config import EEConfig
from repro.exits.evaluation import ConfigEvaluation, WindowBuffer, evaluate_thresholds
from repro.exits.thresholds import ThresholdTuningResult, tune_thresholds_greedy, tune_thresholds_grid
from repro.exits.adjustment import RampAdjuster, RampUtility, AdjustmentDecision
from repro.exits.training import RampTrainer, RampTrainingReport

__all__ = [
    "RampSpec",
    "RampStyle",
    "ramp_overhead_fraction",
    "ramp_parameter_count",
    "RampCatalog",
    "build_ramp_catalog",
    "initial_ramp_selection",
    "EEConfig",
    "ConfigEvaluation",
    "WindowBuffer",
    "evaluate_thresholds",
    "ThresholdTuningResult",
    "tune_thresholds_greedy",
    "tune_thresholds_grid",
    "RampAdjuster",
    "RampUtility",
    "AdjustmentDecision",
    "RampTrainer",
    "RampTrainingReport",
]
