"""Replay-based evaluation of EE configurations (§3.2, "Evaluating threshold
configurations").

Because every input runs to the end of the model, Apparate records — for every
request and every active ramp — the ramp's error score and whether its top
prediction matches the original model.  Any candidate threshold assignment can
then be evaluated *without additional inference* by replaying those records:
find each request's earliest ramp whose error falls below the candidate
threshold, compare the resulting predictions against the original model's
outputs (accuracy), and translate exit depths into saved milliseconds using
the one-time latency profile (latency wins).

The same replay machinery also produces the per-ramp exit rates and overhead
accounting that ramp adjustment (§3.3) consumes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.prediction import RampObservation

__all__ = ["WindowBuffer", "ConfigEvaluation", "evaluate_thresholds"]


@dataclass
class ConfigEvaluation:
    """Outcome of replaying a window of observations under given thresholds."""

    num_samples: int
    accuracy: float
    mean_savings_ms: float
    total_savings_ms: float
    exit_rate: float
    exit_counts: np.ndarray
    ramp_savings_ms: np.ndarray
    ramp_overhead_ms: np.ndarray

    def ramp_utilities(self) -> np.ndarray:
        """Per-ramp utility = savings − overheads (§3.3)."""
        return self.ramp_savings_ms - self.ramp_overhead_ms

    def accuracy_loss(self) -> float:
        return 1.0 - self.accuracy


def evaluate_thresholds(errors: np.ndarray, correct: np.ndarray,
                        thresholds: Sequence[float], depths: Sequence[float],
                        overheads_ms: Sequence[float], full_latency_ms: float) -> ConfigEvaluation:
    """Replay recorded observations under a candidate threshold assignment.

    Parameters
    ----------
    errors:
        ``(num_samples, num_ramps)`` error scores recorded at each active ramp.
    correct:
        Same shape; whether the ramp's prediction matched the original model.
    thresholds / depths / overheads_ms:
        Per-ramp candidate thresholds, depth fractions and per-input latency
        overheads, in model order (aligned with the columns of ``errors``).
    full_latency_ms:
        Whole-model serving time used to convert depths into milliseconds.
    """
    errors = np.atleast_2d(np.asarray(errors, dtype=float))
    correct = np.atleast_2d(np.asarray(correct, dtype=bool))
    thresholds_arr = np.asarray(list(thresholds), dtype=float)
    depths_arr = np.asarray(list(depths), dtype=float)
    overheads_arr = np.asarray(list(overheads_ms), dtype=float)
    n, num_ramps = errors.shape
    if correct.shape != errors.shape:
        raise ValueError("errors and correct must have the same shape")
    if not (thresholds_arr.size == depths_arr.size == overheads_arr.size == num_ramps):
        raise ValueError("per-ramp arrays must match the number of ramp columns")

    if n == 0 or num_ramps == 0:
        return ConfigEvaluation(num_samples=n, accuracy=1.0, mean_savings_ms=0.0,
                                total_savings_ms=0.0, exit_rate=0.0,
                                exit_counts=np.zeros(num_ramps),
                                ramp_savings_ms=np.zeros(num_ramps),
                                ramp_overhead_ms=np.zeros(num_ramps))

    exit_mask = (errors < thresholds_arr[None, :]) & (thresholds_arr[None, :] > 0.0)
    any_exit = exit_mask.any(axis=1)
    # Index of the earliest exiting ramp for each sample (undefined when no
    # exit; masked out below).
    first_exit = np.where(any_exit, exit_mask.argmax(axis=1), num_ramps)

    exit_counts = np.array([(first_exit == r).sum() for r in range(num_ramps)], dtype=float)

    # Accuracy: exited samples count as correct when the exiting ramp agreed
    # with the original model; non-exited samples are always correct (they use
    # the original model's result).
    exited_correct = np.zeros(n, dtype=bool)
    if any_exit.any():
        rows = np.nonzero(any_exit)[0]
        exited_correct[rows] = correct[rows, first_exit[rows]]
    num_correct = int((~any_exit).sum() + exited_correct.sum())
    accuracy = num_correct / n

    # Latency accounting.  cumulative_overhead[r] = overhead of ramps 0..r.
    cumulative_overhead = np.cumsum(overheads_arr)
    total_overhead = float(cumulative_overhead[-1]) if num_ramps else 0.0
    per_sample_savings = np.full(n, -total_overhead, dtype=float)
    ramp_savings = np.zeros(num_ramps, dtype=float)
    if any_exit.any():
        rows = np.nonzero(any_exit)[0]
        exit_idx = first_exit[rows]
        raw_saved = full_latency_ms * (1.0 - depths_arr[exit_idx])
        per_sample_savings[rows] = raw_saved - cumulative_overhead[exit_idx]
        np.add.at(ramp_savings, exit_idx, raw_saved)

    # Per-ramp overhead: each ramp delays every input whose result was still
    # pending when it ran and that did not exit there.
    ramp_overhead = np.zeros(num_ramps, dtype=float)
    for r in range(num_ramps):
        still_pending = (first_exit >= r)        # reached ramp r un-exited
        not_exiting_here = (first_exit != r)
        count = int((still_pending & not_exiting_here).sum())
        ramp_overhead[r] = overheads_arr[r] * count

    return ConfigEvaluation(
        num_samples=n,
        accuracy=float(accuracy),
        mean_savings_ms=float(per_sample_savings.mean()),
        total_savings_ms=float(per_sample_savings.sum()),
        exit_rate=float(any_exit.mean()),
        exit_counts=exit_counts,
        ramp_savings_ms=ramp_savings,
        ramp_overhead_ms=ramp_overhead,
    )


class WindowBuffer:
    """Sliding window of per-ramp observations for the active ramp set.

    The buffer stores, for the most recent ``capacity`` requests, the error
    score and correctness recorded at every active ramp.  It is keyed by the
    active ramp ids; whenever the active set changes the buffer is rebuilt
    (old columns for removed ramps are dropped, new ramps start empty — their
    thresholds are 0 until enough feedback accumulates, so no accuracy risk).
    """

    def __init__(self, ramp_ids: Sequence[int], capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.ramp_ids: List[int] = list(int(r) for r in ramp_ids)
        self._errors: Deque[np.ndarray] = deque(maxlen=self.capacity)
        self._correct: Deque[np.ndarray] = deque(maxlen=self.capacity)

    def __len__(self) -> int:
        return len(self._errors)

    # ----------------------------------------------------------------- write
    def record(self, observations: Sequence[RampObservation]) -> None:
        """Record one request's observations (must cover all active ramps)."""
        by_id = {obs.ramp_id: obs for obs in observations}
        try:
            errors = np.array([by_id[r].error_score for r in self.ramp_ids], dtype=float)
            correct = np.array([by_id[r].correct for r in self.ramp_ids], dtype=bool)
        except KeyError as exc:
            raise KeyError(f"missing observation for active ramp {exc}") from exc
        self._errors.append(errors)
        self._correct.append(correct)

    def rebuild(self, ramp_ids: Sequence[int]) -> None:
        """Re-key the buffer for a new active ramp set.

        History for ramps that remain active is preserved so threshold tuning
        keeps a full window of evidence across ramp-set changes.  Columns for
        newly added ramps are backfilled with "never exits" observations
        (error 1.0): the new ramp deploys with threshold 0 anyway, so it only
        starts influencing decisions once real feedback for it accumulates.
        """
        new_ids = [int(r) for r in ramp_ids]
        if new_ids == self.ramp_ids:
            return
        if self._errors:
            old_index = {rid: i for i, rid in enumerate(self.ramp_ids)}
            old_errors = self.errors_matrix()
            old_correct = self.correct_matrix()
            new_errors = np.ones((old_errors.shape[0], len(new_ids)), dtype=float)
            new_correct = np.ones((old_correct.shape[0], len(new_ids)), dtype=bool)
            for col, rid in enumerate(new_ids):
                if rid in old_index:
                    new_errors[:, col] = old_errors[:, old_index[rid]]
                    new_correct[:, col] = old_correct[:, old_index[rid]]
            self._errors.clear()
            self._correct.clear()
            for row in range(new_errors.shape[0]):
                self._errors.append(new_errors[row])
                self._correct.append(new_correct[row])
        self.ramp_ids = new_ids

    # ------------------------------------------------------------------ read
    def errors_matrix(self) -> np.ndarray:
        if not self._errors:
            return np.zeros((0, len(self.ramp_ids)))
        return np.vstack(list(self._errors))

    def correct_matrix(self) -> np.ndarray:
        if not self._correct:
            return np.zeros((0, len(self.ramp_ids)), dtype=bool)
        return np.vstack(list(self._correct))

    def latest(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return the most recent ``count`` rows of (errors, correctness)."""
        errors = self.errors_matrix()
        correct = self.correct_matrix()
        if count < errors.shape[0]:
            return errors[-count:], correct[-count:]
        return errors, correct

    def evaluate(self, thresholds: Sequence[float], depths: Sequence[float],
                 overheads_ms: Sequence[float], full_latency_ms: float,
                 window: Optional[int] = None) -> ConfigEvaluation:
        """Evaluate a candidate threshold assignment on the buffered window."""
        if window is None:
            errors, correct = self.errors_matrix(), self.correct_matrix()
        else:
            errors, correct = self.latest(window)
        return evaluate_thresholds(errors, correct, thresholds, depths,
                                   overheads_ms, full_latency_ms)
