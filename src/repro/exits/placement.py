"""Ramp placement: candidate enumeration, budgets and initial selection (§3.1).

Given a model graph, the *catalog* of candidate ramps is the set of feasible
positions (cut vertices, excluding trivial ones) annotated with depth and
overhead.  The ramp-aggression parameter bounds the number of simultaneously
active ramps by their total impact on worst-case latency (and throughput):
with a budget of 2% and lightweight ramps costing ~0.2% each, at most ~10
ramps may be active at once.  For initial deployment Apparate spaces the
maximum allowable number of ramps evenly across the model and starts every
threshold at 0 (no exiting) to avoid accuracy dips before the first feedback
arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.graph.cut_vertices import feasible_ramp_positions
from repro.graph.ir import ModelGraph
from repro.models.latency import LatencyProfile
from repro.models.zoo import ModelSpec
from repro.exits.ramps import RampSpec, RampStyle, ramp_overhead_fraction, ramp_parameter_count

__all__ = ["RampCatalog", "build_ramp_catalog", "initial_ramp_selection"]


@dataclass
class RampCatalog:
    """All candidate ramp positions of one model, in model order."""

    spec: ModelSpec
    ramps: List[RampSpec]
    budget_fraction: float

    def __len__(self) -> int:
        return len(self.ramps)

    def ramp(self, ramp_id: int) -> RampSpec:
        return self.ramps[ramp_id]

    def depths(self) -> np.ndarray:
        return np.array([r.depth_fraction for r in self.ramps], dtype=float)

    def max_active_ramps(self) -> int:
        """Largest number of ramps whose combined overhead fits the budget.

        The budget is expressed as a fraction of worst-case (non-exiting)
        latency, exactly like the paper's "ramp aggression" parameter.
        """
        if not self.ramps:
            return 0
        per_ramp = float(np.mean([r.overhead_fraction for r in self.ramps]))
        if per_ramp <= 0:
            return len(self.ramps)
        return max(1, min(len(self.ramps), int(self.budget_fraction / per_ramp)))

    def overhead_of(self, ramp_ids: Sequence[int]) -> float:
        """Total overhead fraction of a set of active ramps."""
        return float(sum(self.ramps[i].overhead_fraction for i in ramp_ids))

    def within_budget(self, ramp_ids: Sequence[int]) -> bool:
        return self.overhead_of(ramp_ids) <= self.budget_fraction + 1e-9

    def coverage(self) -> float:
        """Fraction of model depth spanned by candidate positions."""
        if not self.ramps:
            return 0.0
        depths = self.depths()
        return float(depths.max() - depths.min())


def build_ramp_catalog(spec: ModelSpec, graph: ModelGraph, profile: LatencyProfile,
                       budget_fraction: float = 0.02,
                       style: RampStyle = RampStyle.LIGHTWEIGHT,
                       min_depth: float = 0.02, max_depth: float = 0.97) -> RampCatalog:
    """Enumerate candidate ramps for ``spec`` from its graph and latency profile.

    Positions are the graph's feasible ramp locations (cut vertices); each is
    annotated with the fraction of model latency elapsed at that point, the
    overhead of the chosen ramp style and the ramp's parameter count.
    Positions too close to the model's input or output (``min_depth`` /
    ``max_depth``) are dropped: they could never provide meaningful savings.
    """
    overhead = ramp_overhead_fraction(spec, style)
    ramps: List[RampSpec] = []
    for node in feasible_ramp_positions(graph):
        depth = profile.depth_fraction(node.name)
        if depth < min_depth or depth > max_depth:
            continue
        ramps.append(RampSpec(
            ramp_id=len(ramps),
            node_name=node.name,
            depth_fraction=float(depth),
            overhead_fraction=float(overhead),
            params=ramp_parameter_count(spec, node.output_width or spec.hidden_width, style),
            style=style,
        ))
    return RampCatalog(spec=spec, ramps=ramps, budget_fraction=float(budget_fraction))


def initial_ramp_selection(catalog: RampCatalog, max_ramps: Optional[int] = None) -> List[int]:
    """Evenly space the maximum allowable number of ramps across the model.

    Returns the selected ramp ids in model order.  Selection targets equal
    spacing in *depth* (latency) rather than position index so that latency
    savings options are spread across the whole forward pass.
    """
    if len(catalog) == 0:
        return []
    budgeted = catalog.max_active_ramps()
    count = budgeted if max_ramps is None else min(max_ramps, budgeted)
    count = max(1, min(count, len(catalog)))
    depths = catalog.depths()
    targets = np.linspace(depths.min(), depths.max(), count)
    chosen: List[int] = []
    for target in targets:
        candidate_order = np.argsort(np.abs(depths - target))
        for idx in candidate_order:
            if int(idx) not in chosen:
                chosen.append(int(idx))
                break
    return sorted(chosen)
