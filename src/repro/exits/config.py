"""The deployed early-exit configuration: active ramps and their thresholds."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.exits.placement import RampCatalog
from repro.exits.ramps import RampSpec

__all__ = ["EEConfig"]


@dataclass
class EEConfig:
    """Active ramp set plus per-ramp thresholds.

    The configuration is always expressed against a :class:`RampCatalog`; ramp
    ids index into the catalog.  Thresholds live in ``[0, 1]``: a threshold of
    0 disables exiting at that ramp (the state every newly added ramp starts
    in, §3.1/§3.3).
    """

    catalog: RampCatalog
    active_ramp_ids: List[int] = field(default_factory=list)
    thresholds: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.active_ramp_ids = sorted(set(int(r) for r in self.active_ramp_ids))
        for ramp_id in self.active_ramp_ids:
            self.thresholds.setdefault(ramp_id, 0.0)
        self._validate()

    # ---------------------------------------------------------------- access
    def active_ramps(self) -> List[RampSpec]:
        """Active ramps in model order."""
        return [self.catalog.ramp(r) for r in self.active_ramp_ids]

    def ordered_thresholds(self) -> List[float]:
        """Thresholds aligned with :meth:`active_ramps`."""
        return [self.thresholds[r] for r in self.active_ramp_ids]

    def ordered_depths(self) -> List[float]:
        return [self.catalog.ramp(r).depth_fraction for r in self.active_ramp_ids]

    def ordered_overheads(self) -> List[float]:
        return [self.catalog.ramp(r).overhead_fraction for r in self.active_ramp_ids]

    def num_active(self) -> int:
        return len(self.active_ramp_ids)

    def total_overhead_fraction(self) -> float:
        return self.catalog.overhead_of(self.active_ramp_ids)

    def within_budget(self) -> bool:
        return self.catalog.within_budget(self.active_ramp_ids)

    # ------------------------------------------------------------- mutation
    def set_threshold(self, ramp_id: int, threshold: float) -> None:
        if ramp_id not in self.thresholds:
            raise KeyError(f"ramp {ramp_id} is not active")
        self.thresholds[ramp_id] = float(min(max(threshold, 0.0), 1.0))

    def set_thresholds(self, thresholds: Dict[int, float]) -> None:
        for ramp_id, value in thresholds.items():
            self.set_threshold(ramp_id, value)

    def add_ramp(self, ramp_id: int, threshold: float = 0.0) -> None:
        """Activate a ramp (new ramps start with threshold 0: no exiting)."""
        ramp_id = int(ramp_id)
        if ramp_id < 0 or ramp_id >= len(self.catalog):
            raise KeyError(f"ramp {ramp_id} not in catalog")
        if ramp_id in self.active_ramp_ids:
            return
        self.active_ramp_ids.append(ramp_id)
        self.active_ramp_ids.sort()
        self.thresholds[ramp_id] = float(min(max(threshold, 0.0), 1.0))

    def remove_ramp(self, ramp_id: int) -> None:
        if ramp_id in self.active_ramp_ids:
            self.active_ramp_ids.remove(ramp_id)
            self.thresholds.pop(ramp_id, None)

    def disable_all_exits(self) -> None:
        """Set every threshold to 0 (behaves exactly like the vanilla model)."""
        for ramp_id in self.active_ramp_ids:
            self.thresholds[ramp_id] = 0.0

    def copy(self) -> "EEConfig":
        return EEConfig(catalog=self.catalog,
                        active_ramp_ids=list(self.active_ramp_ids),
                        thresholds=dict(self.thresholds))

    # ------------------------------------------------------------ validation
    def _validate(self) -> None:
        for ramp_id in self.active_ramp_ids:
            if ramp_id < 0 or ramp_id >= len(self.catalog):
                raise ValueError(f"active ramp {ramp_id} not in catalog of size {len(self.catalog)}")
        for ramp_id, threshold in self.thresholds.items():
            if not 0.0 <= threshold <= 1.0:
                raise ValueError(f"threshold for ramp {ramp_id} out of range: {threshold}")

    def describe(self) -> str:
        """Human-readable one-line summary (used in logs and examples)."""
        parts = [
            f"{self.catalog.ramp(r).node_name}@{self.catalog.ramp(r).depth_fraction:.2f}"
            f"(t={self.thresholds[r]:.2f})"
            for r in self.active_ramp_ids
        ]
        return f"EEConfig[{', '.join(parts) if parts else 'no active ramps'}]"
