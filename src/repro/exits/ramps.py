"""Ramp specifications and architectures (§3.1, "Ramp architectures").

Apparate's default ramps are the shallowest computation that can turn an
intermediate into a final prediction: a lightweight pooling operator followed
by the model's final fully-connected layer (input width adjusted to the
intermediate, output width unchanged).  More expensive styles — extra conv
layers for CNNs, the full BERT pooler block, or stacked fc layers — are also
modelled so that the Figure 8 and §4.5 comparisons can be reproduced.  A
ramp's latency overhead is expressed as a fraction of the whole model's
forward-pass time, derived from its FLOPs relative to the model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.models.zoo import ModelSpec

__all__ = ["RampStyle", "RampSpec", "ramp_overhead_fraction", "ramp_parameter_count"]


class RampStyle(str, enum.Enum):
    """Supported ramp architectures."""

    #: pooling + the model's final fc layer (Apparate's default).
    LIGHTWEIGHT = "lightweight"
    #: 1–2 extra conv layers before pooling (CNN alternative in Figure 8).
    CONV_HEAVY = "conv_heavy"
    #: two reduced-width fc layers after pooling (BERT alternative 1).
    STACKED_FC = "stacked_fc"
    #: the full BERT pooler block + dropout, as in DeeBERT (alternative 2).
    DEEP_POOLER = "deep_pooler"
    #: reuse of the model's own decode head (generative models, zero training).
    DECODE_HEAD = "decode_head"


# Relative compute cost of each style, as a multiple of the lightweight ramp.
_STYLE_COST_MULTIPLIER: Dict[RampStyle, float] = {
    RampStyle.LIGHTWEIGHT: 1.0,
    RampStyle.CONV_HEAVY: 4.0,
    RampStyle.STACKED_FC: 2.5,
    RampStyle.DEEP_POOLER: 4.0,
    RampStyle.DECODE_HEAD: 1.0,
}

# Fraction of whole-model latency one *lightweight* ramp adds, per family.
# Classification heads are a tiny share of CNN compute but a larger share of
# two-class BERT classifiers; generative decode heads are relatively costly
# because of the vocabulary-sized projection.
_FAMILY_BASE_OVERHEAD: Dict[str, float] = {
    "resnet": 0.0020,
    "vgg": 0.0015,
    "bert": 0.0035,
    "gpt": 0.0035,
    "t5": 0.0090,
    "llama": 0.0080,
}


@dataclass(frozen=True)
class RampSpec:
    """A (potential or active) early-exit ramp.

    Attributes
    ----------
    ramp_id:
        Index of the ramp's position in the catalog of feasible positions
        (model order).
    node_name:
        Graph node the ramp is attached after.
    depth_fraction:
        Fraction of whole-model latency elapsed when the ramp runs.
    overhead_fraction:
        Fraction of whole-model latency the ramp adds to every batch that
        passes it.
    params:
        Trainable parameters in the ramp.
    style:
        Ramp architecture.
    """

    ramp_id: int
    node_name: str
    depth_fraction: float
    overhead_fraction: float
    params: int
    style: RampStyle = RampStyle.LIGHTWEIGHT


def ramp_overhead_fraction(spec: ModelSpec, style: RampStyle = RampStyle.LIGHTWEIGHT) -> float:
    """Latency overhead of one ramp as a fraction of the model's forward pass."""
    base = _FAMILY_BASE_OVERHEAD.get(spec.family, 0.003)
    return base * _STYLE_COST_MULTIPLIER[style]


def ramp_parameter_count(spec: ModelSpec, intermediate_width: int,
                         style: RampStyle = RampStyle.LIGHTWEIGHT) -> int:
    """Number of trainable parameters in a ramp attached to a given width.

    The lightweight ramp is a single fc layer mapping the intermediate width
    to the model's output classes; heavier styles multiply this by their cost
    factor.  The paper reports ramps at 0.01–3.50% of model parameters.
    """
    width = max(int(intermediate_width), 1)
    base = width * max(spec.num_classes, 2)
    return int(base * _STYLE_COST_MULTIPLIER[style])
