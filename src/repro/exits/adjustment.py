"""Latency-focused ramp adjustment (§3.3, Algorithm 2, Figure 11).

Every adjustment period (128 requests by default) the controller scores each
active ramp by its *utility* — milliseconds of latency saved by inputs exiting
at the ramp minus the milliseconds of overhead it added to inputs it could not
exit — and conservatively alters the active ramp set:

* When negative-utility ramps exist, it first retries a fast round of
  threshold tuning (thresholds are the finer knob); if that cannot make all
  utilities positive, the negative ramps are deactivated and a replacement
  candidate is selected from positions *after the latest positive ramp* using
  upper-bound exit-rate estimates (a candidate can exit at most the inputs
  that went on to exit at the deactivated ramps downstream of it).
* When every ramp is positive, it enters a low-risk probing phase: add a ramp
  immediately before the highest-utility ramp when budget remains, otherwise
  shift the lowest-utility ramp one position earlier (never touching the most
  positive ramp).

New or moved ramps always start with threshold 0, so they cannot harm accuracy
until the next threshold-tuning round assigns them a real threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exits.config import EEConfig
from repro.exits.evaluation import ConfigEvaluation, WindowBuffer
from repro.exits.placement import RampCatalog
from repro.exits.thresholds import tune_thresholds_greedy

__all__ = ["RampUtility", "AdjustmentDecision", "RampAdjuster"]


@dataclass(frozen=True)
class RampUtility:
    """Utility accounting for one active ramp over the last period."""

    ramp_id: int
    depth_fraction: float
    exit_count: int
    exit_rate: float
    savings_ms: float
    overhead_ms: float

    @property
    def utility_ms(self) -> float:
        return self.savings_ms - self.overhead_ms

    @property
    def positive(self) -> bool:
        return self.utility_ms >= 0.0


@dataclass
class AdjustmentDecision:
    """What the adjuster wants the controller to change."""

    action: str
    ramps_to_remove: List[int] = field(default_factory=list)
    ramps_to_add: List[int] = field(default_factory=list)
    new_thresholds: Optional[Dict[int, float]] = None
    utilities: List[RampUtility] = field(default_factory=list)

    @property
    def changes_ramp_set(self) -> bool:
        return bool(self.ramps_to_remove or self.ramps_to_add)


class RampAdjuster:
    """Implements Algorithm 2 against a ramp catalog."""

    def __init__(self, catalog: RampCatalog, accuracy_constraint: float = 0.01) -> None:
        self.catalog = catalog
        self.accuracy_constraint = float(accuracy_constraint)
        # Ramps deactivated in the most recent round are not re-trialed in the
        # very next probing round, which prevents add/remove churn on ramps
        # that keep proving unfruitful.
        self._recently_removed: set = set()

    # ------------------------------------------------------------- utilities
    def compute_utilities(self, config: EEConfig, evaluation: ConfigEvaluation) -> List[RampUtility]:
        """Convert a window evaluation into per-ramp utilities."""
        utilities: List[RampUtility] = []
        n = max(evaluation.num_samples, 1)
        for idx, ramp_id in enumerate(config.active_ramp_ids):
            ramp = self.catalog.ramp(ramp_id)
            utilities.append(RampUtility(
                ramp_id=ramp_id,
                depth_fraction=ramp.depth_fraction,
                exit_count=int(evaluation.exit_counts[idx]),
                exit_rate=float(evaluation.exit_counts[idx]) / n,
                savings_ms=float(evaluation.ramp_savings_ms[idx]),
                overhead_ms=float(evaluation.ramp_overhead_ms[idx]),
            ))
        return utilities

    # ----------------------------------------------------------------- main
    def propose(self, config: EEConfig, window: WindowBuffer,
                full_latency_ms: float) -> AdjustmentDecision:
        """Produce an adjustment decision from the current window of feedback."""
        if config.num_active() == 0:
            return self._bootstrap_decision()

        evaluation = window.evaluate(config.ordered_thresholds(), config.ordered_depths(),
                                     [o * full_latency_ms for o in config.ordered_overheads()],
                                     full_latency_ms)
        utilities = self.compute_utilities(config, evaluation)
        negative = [u for u in utilities if not u.positive]

        if negative:
            return self._handle_negative(config, window, full_latency_ms, utilities)
        return self._probe(config, utilities)

    # ------------------------------------------------------------- negatives
    def _handle_negative(self, config: EEConfig, window: WindowBuffer,
                         full_latency_ms: float,
                         utilities: List[RampUtility]) -> AdjustmentDecision:
        """Negative-utility path: retune thresholds, else replace ramps."""
        overheads_ms = [o * full_latency_ms for o in config.ordered_overheads()]
        retune = tune_thresholds_greedy(window.errors_matrix(), window.correct_matrix(),
                                        config.ordered_depths(), overheads_ms,
                                        full_latency_ms,
                                        accuracy_constraint=self.accuracy_constraint)
        trial = config.copy()
        trial.set_thresholds(retune.thresholds_by_ramp(config.active_ramp_ids))
        trial_eval = window.evaluate(trial.ordered_thresholds(), trial.ordered_depths(),
                                     overheads_ms, full_latency_ms)
        trial_utilities = self.compute_utilities(trial, trial_eval)
        current_eval = window.evaluate(config.ordered_thresholds(), config.ordered_depths(),
                                       overheads_ms, full_latency_ms)
        if all(u.positive for u in trial_utilities) and \
                trial_eval.mean_savings_ms >= current_eval.mean_savings_ms:
            return AdjustmentDecision(
                action="retuned-thresholds",
                new_thresholds=retune.thresholds_by_ramp(config.active_ramp_ids),
                utilities=trial_utilities,
            )

        to_remove = [u.ramp_id for u in utilities if not u.positive]
        addition = self._select_addition(config, utilities, to_remove, full_latency_ms)
        self._recently_removed = set(to_remove)
        return AdjustmentDecision(
            action="replaced-negative-ramps",
            ramps_to_remove=to_remove,
            ramps_to_add=[addition] if addition is not None else [],
            utilities=utilities,
        )

    def _select_addition(self, config: EEConfig, utilities: List[RampUtility],
                         removed: Sequence[int], full_latency_ms: float) -> Optional[int]:
        """Pick a replacement ramp after the latest positive ramp (Figure 11)."""
        positive = [u for u in utilities if u.positive]
        removed_set = set(removed)
        removed_utils = sorted((u for u in utilities if u.ramp_id in removed_set),
                               key=lambda u: u.ramp_id)
        latest_positive_id = max((u.ramp_id for u in positive), default=-1)

        # Candidate positions: inactive catalog ramps after the latest
        # positive ramp, excluding the ones just removed.
        active = set(config.active_ramp_ids)
        candidates = [r.ramp_id for r in self.catalog.ramps
                      if r.ramp_id > latest_positive_id
                      and r.ramp_id not in active]
        if not candidates:
            return None

        # Intervals are separated by the removed (deactivated) ramps.
        boundaries = [u.ramp_id for u in removed_utils if u.ramp_id > latest_positive_id]
        intervals = self._intervals(candidates, boundaries)

        per_exit_savings = {
            rid: full_latency_ms * (1.0 - self.catalog.ramp(rid).depth_fraction)
            for rid in candidates
        }
        overhead_ms = {
            rid: self.catalog.ramp(rid).overhead_fraction * full_latency_ms
            for rid in candidates
        }

        # Round-by-round: start from the middle of each interval, then move to
        # later positions if every candidate projects a negative utility.
        pools = [list(interval) for interval in intervals if interval]
        round_index = 0
        while True:
            round_candidates: List[int] = []
            for pool in pools:
                idx = self._round_position(len(pool), round_index)
                if idx is not None:
                    round_candidates.append(pool[idx])
            if not round_candidates:
                return None
            best_ramp: Optional[int] = None
            best_utility = 0.0
            for rid in round_candidates:
                exit_rate_ub = self._upper_bound_exit_rate(rid, removed_utils)
                utility = exit_rate_ub * per_exit_savings[rid] - \
                    (1.0 - exit_rate_ub) * overhead_ms[rid]
                if utility > best_utility:
                    best_utility = utility
                    best_ramp = rid
            if best_ramp is not None:
                return best_ramp
            round_index += 1
            if round_index > max(len(p) for p in pools):
                return None

    @staticmethod
    def _round_position(pool_size: int, round_index: int) -> Optional[int]:
        """Position to probe within an interval for the given search round.

        Round 0 probes the middle of the interval; later rounds move toward
        the end (later ramps have higher exit-rate upper bounds).
        """
        if pool_size == 0:
            return None
        idx = pool_size // 2 + round_index
        if idx >= pool_size:
            return None
        return idx

    @staticmethod
    def _intervals(candidates: Sequence[int], boundaries: Sequence[int]) -> List[List[int]]:
        """Split candidate ids into intervals separated by deactivated ramps."""
        intervals: List[List[int]] = []
        current: List[int] = []
        boundary_iter = sorted(boundaries)
        b_idx = 0
        for rid in sorted(candidates):
            while b_idx < len(boundary_iter) and boundary_iter[b_idx] < rid:
                if current:
                    intervals.append(current)
                    current = []
                b_idx += 1
            current.append(rid)
        if current:
            intervals.append(current)
        return intervals

    @staticmethod
    def _upper_bound_exit_rate(candidate_id: int, removed_utils: Sequence[RampUtility]) -> float:
        """Upper bound on a candidate's exit rate (Figure 11).

        Inputs that exited at deactivated ramps at or after the candidate's
        position *might* have exited at the candidate; inputs from earlier
        deactivations would also have reached it.  The bound sums the profiled
        exit rates of the next deactivated ramp downstream plus all earlier
        deactivations.
        """
        earlier = [u.exit_rate for u in removed_utils if u.ramp_id < candidate_id]
        later = [u.exit_rate for u in removed_utils if u.ramp_id >= candidate_id]
        bound = sum(earlier) + (later[0] if later else 0.0)
        return float(min(bound, 1.0))

    # --------------------------------------------------------------- probing
    def _probe(self, config: EEConfig, utilities: List[RampUtility]) -> AdjustmentDecision:
        """All-positive path: probe earlier positions for extra savings."""
        if not utilities:
            return AdjustmentDecision(action="noop", utilities=utilities)
        best = max(utilities, key=lambda u: u.utility_ms)
        worst = min(utilities, key=lambda u: u.utility_ms)
        active = set(config.active_ramp_ids)

        budget_left = len(active) < self.catalog.max_active_ramps()
        if budget_left:
            candidate = self._nearest_inactive_before(best.ramp_id, active | self._recently_removed)
            self._recently_removed = set()
            if candidate is not None:
                return AdjustmentDecision(action="probe-add-before-best",
                                          ramps_to_add=[candidate], utilities=utilities)
            return AdjustmentDecision(action="noop", utilities=utilities)

        if worst.ramp_id == best.ramp_id:
            return AdjustmentDecision(action="noop", utilities=utilities)
        candidate = self._nearest_inactive_before(worst.ramp_id, active)
        if candidate is None:
            return AdjustmentDecision(action="noop", utilities=utilities)
        return AdjustmentDecision(action="probe-shift-worst-earlier",
                                  ramps_to_remove=[worst.ramp_id],
                                  ramps_to_add=[candidate], utilities=utilities)

    def _nearest_inactive_before(self, ramp_id: int, active: set) -> Optional[int]:
        for candidate in range(ramp_id - 1, -1, -1):
            if candidate not in active:
                return candidate
        return None

    # ------------------------------------------------------------- bootstrap
    def _bootstrap_decision(self) -> AdjustmentDecision:
        """With no active ramps, re-seed from the middle of the catalog."""
        if len(self.catalog) == 0:
            return AdjustmentDecision(action="noop")
        middle = len(self.catalog) // 2
        return AdjustmentDecision(action="bootstrap-add-middle", ramps_to_add=[middle])
