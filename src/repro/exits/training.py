"""Ramp training on bootstrap data (§3.1, "Training ramps and deploying models").

Apparate trains ramps against labels produced by the original model itself
(so no human labels are needed), freezes the original weights, prohibits
exiting during training so every ramp trains on every input (keeping ramps
independent of each other), and back-propagates losses for all ramps in
parallel.  The ramps are tiny (a pooling op plus one fc layer), so training
takes minutes, not hours.

In this reproduction "training" means calibrating each candidate ramp against
the bootstrap slice of the workload: measuring, per ramp, the exit rate and
agreement it would achieve across threshold values.  The resulting
:class:`RampTrainingReport` records the same artefacts the real system
produces — per-ramp parameter counts, the estimated training cost (FLOPs
relative to the original model), and the bootstrap calibration curves used by
the initial deployment sanity checks and by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exits.placement import RampCatalog
from repro.models.prediction import PredictionModel, ramp_error_score
from repro.models.zoo import ModelSpec
from repro.workloads.difficulty import DifficultyTrace

__all__ = ["RampCalibration", "RampTrainingReport", "RampTrainer"]

# Training passes over the bootstrap slice (the paper's ramps converge within
# a few epochs because they are single fc layers).
_TRAIN_EPOCHS = 3
# FLOPs multiplier of a backward pass relative to forward.
_BACKWARD_MULTIPLIER = 2.0


@dataclass
class RampCalibration:
    """Bootstrap calibration for one candidate ramp."""

    ramp_id: int
    depth_fraction: float
    #: exit rate the ramp would achieve at each probe threshold.
    exit_rate_by_threshold: Dict[float, float]
    #: agreement with the original model among inputs that would exit.
    agreement_by_threshold: Dict[float, float]

    def exit_rate(self, threshold: float) -> float:
        return self.exit_rate_by_threshold.get(round(threshold, 3), 0.0)

    def agreement(self, threshold: float) -> float:
        return self.agreement_by_threshold.get(round(threshold, 3), 1.0)


@dataclass
class RampTrainingReport:
    """Summary of the ramp-training phase."""

    model_name: str
    num_ramps: int
    ramp_params: int
    model_params: int
    train_samples: int
    validation_samples: int
    training_flops_fraction: float
    calibrations: List[RampCalibration] = field(default_factory=list)

    @property
    def ramp_params_fraction(self) -> float:
        """Ramp parameters as a fraction of the original model's parameters."""
        if self.model_params <= 0:
            return 0.0
        return self.ramp_params / self.model_params

    def calibration_for(self, ramp_id: int) -> RampCalibration:
        for cal in self.calibrations:
            if cal.ramp_id == ramp_id:
                return cal
        raise KeyError(f"no calibration for ramp {ramp_id}")


class RampTrainer:
    """Calibrates candidate ramps on the bootstrap slice of a workload.

    Parameters
    ----------
    spec / catalog / prediction:
        Model description, candidate ramp catalog and prediction model.
    bootstrap_fraction:
        Fraction of the workload used for training + validation (the paper
        uses the first 10% with a 1:9 train/validation split).
    """

    def __init__(self, spec: ModelSpec, catalog: RampCatalog, prediction: PredictionModel,
                 bootstrap_fraction: float = 0.10, train_validation_split: float = 0.1) -> None:
        if not 0.0 < bootstrap_fraction <= 1.0:
            raise ValueError("bootstrap_fraction must be in (0, 1]")
        self.spec = spec
        self.catalog = catalog
        self.prediction = prediction
        self.bootstrap_fraction = float(bootstrap_fraction)
        self.train_validation_split = float(train_validation_split)

    def bootstrap_slice(self, trace: DifficultyTrace) -> DifficultyTrace:
        """The leading slice of the workload used for ramp training."""
        count = max(1, int(len(trace) * self.bootstrap_fraction))
        return trace.slice(0, count)

    def train(self, trace: DifficultyTrace,
              probe_thresholds: Optional[Sequence[float]] = None) -> RampTrainingReport:
        """Calibrate every catalog ramp on the bootstrap slice of ``trace``."""
        bootstrap = self.bootstrap_slice(trace)
        n_train = max(1, int(len(bootstrap) * self.train_validation_split))
        validation = bootstrap.slice(n_train, len(bootstrap))
        if len(validation) == 0:
            validation = bootstrap
        probes = [round(t, 3) for t in (probe_thresholds or np.arange(0.1, 1.01, 0.1))]

        depths = self.catalog.depths()
        required = self.prediction.required_depths(validation.raw_difficulty)
        sharpness = validation.sharpness

        calibrations: List[RampCalibration] = []
        for ramp in self.catalog.ramps:
            errors = ramp_error_score(required, ramp.depth_fraction, sharpness)
            correct = required <= ramp.depth_fraction
            exit_rates: Dict[float, float] = {}
            agreements: Dict[float, float] = {}
            for threshold in probes:
                exits = errors < threshold
                rate = float(exits.mean()) if exits.size else 0.0
                exit_rates[threshold] = rate
                if exits.any():
                    agreements[threshold] = float(correct[exits].mean())
                else:
                    agreements[threshold] = 1.0
            calibrations.append(RampCalibration(
                ramp_id=ramp.ramp_id,
                depth_fraction=ramp.depth_fraction,
                exit_rate_by_threshold=exit_rates,
                agreement_by_threshold=agreements,
            ))

        ramp_params = int(sum(r.params for r in self.catalog.ramps))
        model_params = int(self.spec.params_millions * 1e6)
        # Training FLOPs relative to a single forward pass of the full model
        # over the training slice: ramps are tiny, so this is well below 1.
        ramp_flops_fraction = float(sum(r.overhead_fraction for r in self.catalog.ramps))
        training_flops_fraction = ramp_flops_fraction * _TRAIN_EPOCHS * (1.0 + _BACKWARD_MULTIPLIER)

        return RampTrainingReport(
            model_name=self.spec.name,
            num_ramps=len(self.catalog),
            ramp_params=ramp_params,
            model_params=model_params,
            train_samples=n_train,
            validation_samples=len(validation),
            training_flops_fraction=training_flops_fraction,
            calibrations=calibrations,
        )
