"""Threshold tuning (§3.2, Algorithm 1) plus a grid-search reference.

The tuner searches for per-ramp thresholds that maximize latency savings on
the most recent window of recorded observations, subject to the accuracy
constraint.  It exploits the monotone structure of the problem (raising any
threshold can only increase exits, increasing latency savings and decreasing
accuracy) with greedy hill climbing:

* all thresholds start at 0 (no exiting) with a per-ramp step size;
* each round tries raising every ramp's threshold in isolation and applies the
  single change with the best marginal savings per unit of accuracy loss;
* step sizes follow multiplicative-increase / multiplicative-decrease: a
  chosen ramp doubles its step (promising direction), a ramp whose trial
  violated the constraint halves it (homing in on the accuracy boundary),
  lower-bounded at ``min_step``;
* the search ends when no ramp can be raised without violating the constraint
  and every step size has collapsed to the minimum.

``tune_thresholds_grid`` exhaustively evaluates a discretized grid and is used
as the optimality reference for Figure 10.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exits.evaluation import ConfigEvaluation, evaluate_thresholds

__all__ = ["ThresholdTuningResult", "tune_thresholds_greedy", "tune_thresholds_grid"]

# Accuracy-loss granularity below which extra loss is treated as free when
# ranking candidate moves (avoids division by ~0 for moves that add savings
# with no measurable accuracy change).
_EPS_LOSS = 1e-6


@dataclass
class ThresholdTuningResult:
    """Outcome of a threshold-tuning run."""

    thresholds: List[float]
    evaluation: ConfigEvaluation
    rounds: int
    evaluations: int
    runtime_ms: float

    def thresholds_by_ramp(self, ramp_ids: Sequence[int]) -> Dict[int, float]:
        return {int(r): float(t) for r, t in zip(ramp_ids, self.thresholds)}


def _evaluate(errors: np.ndarray, correct: np.ndarray, thresholds: Sequence[float],
              depths: Sequence[float], overheads_ms: Sequence[float],
              full_latency_ms: float) -> ConfigEvaluation:
    return evaluate_thresholds(errors, correct, thresholds, depths, overheads_ms,
                               full_latency_ms)


def tune_thresholds_greedy(errors: np.ndarray, correct: np.ndarray,
                           depths: Sequence[float], overheads_ms: Sequence[float],
                           full_latency_ms: float, accuracy_constraint: float = 0.01,
                           initial_step: float = 0.1, min_step: float = 0.01,
                           max_rounds: int = 200,
                           conservative_margin: float = 0.0) -> ThresholdTuningResult:
    """Algorithm 1: greedy hill-climbing threshold search with MIMD steps.

    Parameters
    ----------
    errors / correct:
        ``(num_samples, num_ramps)`` recorded observations for the window.
    depths / overheads_ms:
        Per-ramp depth fractions and per-input overheads (model order).
    full_latency_ms:
        Whole-model serving time for converting depths to milliseconds.
    accuracy_constraint:
        Maximum tolerable accuracy loss relative to the original model
        (e.g. 0.01 for the paper's default 1%).
    conservative_margin:
        Pseudo-count of wrong results added to the window when checking the
        constraint.  With a finite window, a candidate threshold can look
        perfect by luck; the margin demands statistical headroom (e.g. a
        margin of 1 on a 256-sample window only admits thresholds whose
        observed loss is at least one sample below the budget).
    """
    start = time.perf_counter()
    depths = list(depths)
    num_ramps = len(depths)
    thresholds = [0.0] * num_ramps
    step_sizes = [float(initial_step)] * num_ramps
    num_samples = int(np.atleast_2d(np.asarray(errors)).shape[0]) if num_ramps else 0
    min_accuracy = 1.0 - float(accuracy_constraint)
    if conservative_margin > 0.0 and num_samples > 0:
        min_accuracy += conservative_margin / num_samples

    evaluations = 0
    rounds = 0
    best_eval = _evaluate(errors, correct, thresholds, depths, overheads_ms, full_latency_ms)
    evaluations += 1

    while rounds < max_rounds:
        rounds += 1
        best_ramp: Optional[int] = None
        best_score = -np.inf
        best_candidate_eval: Optional[ConfigEvaluation] = None
        best_candidate_threshold = 0.0
        overstepped: List[int] = []

        for ramp in range(num_ramps):
            if thresholds[ramp] >= 1.0:
                continue
            trial = list(thresholds)
            trial[ramp] = min(1.0, trial[ramp] + step_sizes[ramp])
            candidate = _evaluate(errors, correct, trial, depths, overheads_ms, full_latency_ms)
            evaluations += 1
            if candidate.accuracy < min_accuracy:
                overstepped.append(ramp)
                continue
            gain = candidate.mean_savings_ms - best_eval.mean_savings_ms
            loss = max(best_eval.accuracy - candidate.accuracy, 0.0)
            if gain <= 0.0:
                continue
            score = gain / max(loss, _EPS_LOSS)
            if score > best_score:
                best_score = score
                best_ramp = ramp
                best_candidate_eval = candidate
                best_candidate_threshold = trial[ramp]

        if best_ramp is not None and best_candidate_eval is not None:
            thresholds[best_ramp] = best_candidate_threshold
            best_eval = best_candidate_eval
            step_sizes[best_ramp] = min(step_sizes[best_ramp] * 2.0, 0.5)
            # Overstepped ramps still shrink their steps to zoom into the
            # accuracy boundary in later rounds.
            for ramp in overstepped:
                step_sizes[ramp] = max(step_sizes[ramp] / 2.0, min_step)
            continue

        # No admissible improvement this round: shrink overstepped ramps and
        # stop once every step has collapsed to the minimum.
        progressed = False
        for ramp in overstepped:
            if step_sizes[ramp] > min_step:
                step_sizes[ramp] = max(step_sizes[ramp] / 2.0, min_step)
                progressed = True
        if not progressed:
            break

    runtime_ms = (time.perf_counter() - start) * 1000.0
    return ThresholdTuningResult(thresholds=thresholds, evaluation=best_eval,
                                 rounds=rounds, evaluations=evaluations,
                                 runtime_ms=runtime_ms)


def tune_thresholds_grid(errors: np.ndarray, correct: np.ndarray,
                         depths: Sequence[float], overheads_ms: Sequence[float],
                         full_latency_ms: float, accuracy_constraint: float = 0.01,
                         step: float = 0.1) -> ThresholdTuningResult:
    """Exhaustive grid search over discretized thresholds (Figure 10 baseline).

    Cost grows as ``O((1/step + 1) ** num_ramps)`` and is only practical for a
    handful of ramps; it exists to quantify how close the greedy search gets
    to the optimum.
    """
    start = time.perf_counter()
    depths = list(depths)
    num_ramps = len(depths)
    values = np.round(np.arange(0.0, 1.0 + step / 2, step), 6)
    min_accuracy = 1.0 - float(accuracy_constraint)

    best_thresholds = [0.0] * num_ramps
    best_eval = _evaluate(errors, correct, best_thresholds, depths, overheads_ms, full_latency_ms)
    evaluations = 1
    for combo in itertools.product(values, repeat=num_ramps):
        candidate = _evaluate(errors, correct, list(combo), depths, overheads_ms, full_latency_ms)
        evaluations += 1
        if candidate.accuracy < min_accuracy:
            continue
        if candidate.mean_savings_ms > best_eval.mean_savings_ms:
            best_eval = candidate
            best_thresholds = list(float(v) for v in combo)

    runtime_ms = (time.perf_counter() - start) * 1000.0
    return ThresholdTuningResult(thresholds=best_thresholds, evaluation=best_eval,
                                 rounds=1, evaluations=evaluations, runtime_ms=runtime_ms)
