"""repro — a full reproduction of Apparate (SOSP 2024).

Apparate automatically injects and manages early exits (EEs) in ML models to
lower per-request serving latency without harming platform throughput or
violating accuracy constraints.  This package reproduces the system and its
evaluation on top of a simulated model-execution and serving substrate (see
DESIGN.md for the substitution rationale).

Quickstart
----------
>>> from repro import Apparate
>>> from repro.workloads import make_video_workload
>>> system = Apparate(seed=0)
>>> deployment = system.register("resnet50", accuracy_constraint=0.01, ramp_budget=0.02)
>>> workload = make_video_workload("urban-day", num_frames=2000)
>>> result = deployment.serve(workload, platform="clockwork")
>>> vanilla = deployment.serve_vanilla(workload, platform="clockwork")
"""

from repro.core import (
    Apparate,
    ApparateDeployment,
    ApparateController,
    ApparateRunResult,
    ApparateClusterRunResult,
    FleetController,
    GenerativeRunResult,
    run_apparate,
    run_vanilla,
    run_apparate_cluster,
    run_vanilla_cluster,
    run_generative_apparate,
    run_generative_vanilla,
)
from repro.models import ModelSpec, Task, get_model, list_models, register_model

__version__ = "1.0.0"

__all__ = [
    "Apparate",
    "ApparateDeployment",
    "ApparateController",
    "ApparateRunResult",
    "ApparateClusterRunResult",
    "FleetController",
    "GenerativeRunResult",
    "run_apparate",
    "run_vanilla",
    "run_apparate_cluster",
    "run_vanilla_cluster",
    "run_generative_apparate",
    "run_generative_vanilla",
    "ModelSpec",
    "Task",
    "get_model",
    "list_models",
    "register_model",
    "__version__",
]
