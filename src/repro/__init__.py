"""repro — a full reproduction of Apparate (SOSP 2024).

Apparate automatically injects and manages early exits (EEs) in ML models to
lower per-request serving latency without harming platform throughput or
violating accuracy constraints.  This package reproduces the system and its
evaluation on top of a simulated model-execution and serving substrate (see
DESIGN.md for the substitution rationale).

Quickstart
----------
The declarative :class:`Experiment` facade runs any set of registered
systems — Apparate, vanilla serving, and the paper's baselines — on one
configuration and compares them:

>>> from repro import Experiment, WorkloadSpec
>>> exp = Experiment(model="resnet50", workload=WorkloadSpec("video", "urban-day",
...                                                          requests=2000))
>>> report = exp.run(systems=["vanilla", "apparate"])
>>> sweep = exp.sweep(replicas=[1, 2, 4])                  # doctest: +SKIP

The object API (:class:`Apparate`) mirrors the paper's register/serve
workflow, and the ``run_*`` helpers remain as shims over the registry.

Every serving platform — the classification cluster, the generative
continuous-batching cluster and the disaggregated prefill/decode pools —
runs on the shared heap-scheduled discrete-event kernel in
:mod:`repro.serving.kernel` (see its docstring for the event-ordering
guarantees).  Simulation speed is benchmark-gated: ``BENCH_simspeed.json``
tracks simulated requests/sec against the preserved pre-kernel loops;
refresh it with ``BENCH_SIMSPEED=full PYTHONPATH=src python -m pytest -q -s
benchmarks/test_simspeed.py``.
"""

from repro.core import (
    Apparate,
    ApparateDeployment,
    ApparateController,
    ApparateRunResult,
    ApparateClusterRunResult,
    FleetController,
    GenerativeRunResult,
    GenerativeClusterRunResult,
    run_apparate,
    run_vanilla,
    run_apparate_cluster,
    run_vanilla_cluster,
    run_generative_apparate,
    run_generative_vanilla,
    run_generative_apparate_cluster,
    run_generative_vanilla_cluster,
)
from repro.models import ModelSpec, Task, get_model, list_models, register_model
from repro.api import (
    ClusterSpec,
    Experiment,
    ExitPolicySpec,
    RunReport,
    RunResult,
    SweepReport,
    WorkloadSpec,
    list_systems,
    register_system,
)

__version__ = "1.1.0"

__all__ = [
    "Experiment",
    "WorkloadSpec",
    "ClusterSpec",
    "ExitPolicySpec",
    "RunResult",
    "RunReport",
    "SweepReport",
    "register_system",
    "list_systems",
    "Apparate",
    "ApparateDeployment",
    "ApparateController",
    "ApparateRunResult",
    "ApparateClusterRunResult",
    "FleetController",
    "GenerativeRunResult",
    "GenerativeClusterRunResult",
    "run_apparate",
    "run_vanilla",
    "run_apparate_cluster",
    "run_vanilla_cluster",
    "run_generative_apparate",
    "run_generative_vanilla",
    "run_generative_apparate_cluster",
    "run_generative_vanilla_cluster",
    "ModelSpec",
    "Task",
    "get_model",
    "list_models",
    "register_model",
    "__version__",
]
