"""Input-difficulty processes underlying every workload.

Each request carries a *raw difficulty* in ``[0, 1]`` (how much of a model's
predictive power it needs — see :mod:`repro.models.prediction`) and a
*sharpness* describing how quickly ramp confidence improves with extra depth.
Workloads differ in how difficulty evolves over the stream:

* :class:`RandomWalkDifficulty` — bounded random walk with occasional jumps;
  adjacent requests are highly correlated (video frames).
* :class:`RegimeSwitchDifficulty` — piecewise-stationary: difficulty is drawn
  i.i.d. around a regime mean, and the mean jumps at regime boundaries
  (product categories / users in review streams).

Both produce :class:`DifficultyTrace` objects: plain arrays that the serving
pipeline and the offline analyses (optimal exits, config-drift studies) can
share without re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

__all__ = [
    "InputSample",
    "DifficultyTrace",
    "RandomWalkDifficulty",
    "RegimeSwitchDifficulty",
]


@dataclass(frozen=True)
class InputSample:
    """One request's latent properties.

    ``confidence_shift`` models confidence miscalibration: a positive shift
    makes ramps look more confident than they should be for this input (the
    failure mode that breaks one-time-tuned thresholds under workload drift,
    §2.3/C3), a negative shift makes them under-confident.
    """

    index: int
    raw_difficulty: float
    sharpness: float
    confidence_shift: float = 0.0


@dataclass
class DifficultyTrace:
    """A materialized stream of input samples."""

    name: str
    raw_difficulty: np.ndarray
    sharpness: np.ndarray
    confidence_shift: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.raw_difficulty = np.clip(np.asarray(self.raw_difficulty, dtype=float), 0.0, 1.0)
        self.sharpness = np.asarray(self.sharpness, dtype=float)
        if self.confidence_shift is None:
            self.confidence_shift = np.zeros_like(self.raw_difficulty)
        self.confidence_shift = np.asarray(self.confidence_shift, dtype=float)
        if self.raw_difficulty.shape != self.sharpness.shape:
            raise ValueError("difficulty and sharpness must have the same length")
        if self.raw_difficulty.shape != self.confidence_shift.shape:
            raise ValueError("difficulty and confidence_shift must have the same length")

    def __len__(self) -> int:
        return int(self.raw_difficulty.size)

    def sample(self, index: int) -> InputSample:
        return InputSample(index=index,
                           raw_difficulty=float(self.raw_difficulty[index]),
                           sharpness=float(self.sharpness[index]),
                           confidence_shift=float(self.confidence_shift[index]))

    def samples(self) -> Iterator[InputSample]:
        for i in range(len(self)):
            yield self.sample(i)

    def slice(self, start: int, stop: int) -> "DifficultyTrace":
        return DifficultyTrace(name=f"{self.name}[{start}:{stop}]",
                               raw_difficulty=self.raw_difficulty[start:stop],
                               sharpness=self.sharpness[start:stop],
                               confidence_shift=self.confidence_shift[start:stop])

    def mean_difficulty(self) -> float:
        return float(self.raw_difficulty.mean()) if len(self) else 0.0


def _draw_sharpness(rng: np.random.Generator, n: int,
                    low: float = 0.03, high: float = 0.10) -> np.ndarray:
    """Per-input confidence sharpness (how quickly entropy falls past depth d)."""
    return rng.uniform(low, high, size=n)


def _draw_confidence_shift(rng: np.random.Generator, n: int,
                           amplitude: float = 0.06, period_fraction: float = 0.6,
                           noise: float = 0.01) -> np.ndarray:
    """Slowly drifting confidence miscalibration across the stream.

    Ramp confidence is not perfectly calibrated, and the miscalibration
    changes as the data distribution shifts (lighting changes, new product
    categories, ...).  A positive shift makes ramps *over*-confident: a
    threshold that was safe when it was tuned starts admitting wrong exits —
    exactly the failure mode that forces continual threshold re-tuning
    (Table 1) and breaks statically tuned EE models (Table 2).
    """
    if n <= 1:
        return np.zeros(n)
    period = max(int(n * period_fraction), 2)
    phase = rng.uniform(0.0, 2.0 * np.pi)
    positions = np.arange(n)
    smooth = np.sin(2.0 * np.pi * positions / period + phase)
    wobble = rng.normal(0.0, 0.1, size=n).cumsum() / np.sqrt(n)
    drift = amplitude * (0.6 * smooth + 0.4 * np.clip(wobble, -1.0, 1.0))
    drift = np.clip(drift, -amplitude, amplitude)
    # Per-input calibration noise: confidence is an imperfect proxy for
    # correctness even within one regime.  Workloads with little continuity
    # (NLP review streams) have much noisier confidence than video frames,
    # which is why the paper finds a wider gap to the optimal for NLP (§4.2).
    if noise > 0.0:
        drift = drift + rng.normal(0.0, noise, size=n)
    return drift


class RandomWalkDifficulty:
    """Bounded random-walk difficulty with occasional scene changes.

    Parameters
    ----------
    mean:
        Long-run mean difficulty the walk reverts to.
    volatility:
        Per-step standard deviation of the walk.
    scene_change_prob:
        Probability per step of an abrupt jump to a new local mean (scene
        change in a video).
    phase_period / phase_amplitude:
        Slow sinusoidal modulation of the mean (day/night lighting changes).
    """

    def __init__(self, mean: float = 0.25, volatility: float = 0.02,
                 scene_change_prob: float = 0.002, reversion: float = 0.02,
                 phase_period: int = 20_000, phase_amplitude: float = 0.08,
                 confidence_noise: float = 0.01) -> None:
        self.mean = float(mean)
        self.volatility = float(volatility)
        self.scene_change_prob = float(scene_change_prob)
        self.reversion = float(reversion)
        self.phase_period = int(phase_period)
        self.phase_amplitude = float(phase_amplitude)
        self.confidence_noise = float(confidence_noise)

    def generate(self, n: int, rng: np.random.Generator, name: str = "random-walk") -> DifficultyTrace:
        difficulty = np.empty(n, dtype=float)
        local_mean = self.mean
        value = float(np.clip(rng.normal(self.mean, 0.05), 0.0, 1.0))
        for i in range(n):
            if rng.random() < self.scene_change_prob:
                local_mean = float(np.clip(rng.normal(self.mean, 0.15), 0.02, 0.95))
                value = float(np.clip(rng.normal(local_mean, 0.05), 0.0, 1.0))
            phase = self.phase_amplitude * np.sin(2.0 * np.pi * i / max(self.phase_period, 1))
            target = np.clip(local_mean + phase, 0.0, 1.0)
            value += self.reversion * (target - value) + rng.normal(0.0, self.volatility)
            value = float(np.clip(value, 0.0, 1.0))
            difficulty[i] = value
        return DifficultyTrace(name=name, raw_difficulty=difficulty,
                               sharpness=_draw_sharpness(rng, n),
                               confidence_shift=_draw_confidence_shift(
                                   rng, n, noise=self.confidence_noise))


class RegimeSwitchDifficulty:
    """Piecewise-stationary difficulty with abrupt regime changes.

    Each regime (product category, frequent reviewer, ...) has its own mean
    difficulty; within a regime requests are weakly correlated.  Regime
    lengths are geometric with the given expected length.
    """

    def __init__(self, base_mean: float = 0.55, regime_spread: float = 0.18,
                 within_spread: float = 0.12, expected_regime_length: int = 400,
                 confidence_noise: float = 0.05) -> None:
        self.base_mean = float(base_mean)
        self.regime_spread = float(regime_spread)
        self.within_spread = float(within_spread)
        self.expected_regime_length = int(expected_regime_length)
        self.confidence_noise = float(confidence_noise)

    def generate(self, n: int, rng: np.random.Generator, name: str = "regime-switch") -> DifficultyTrace:
        difficulty = np.empty(n, dtype=float)
        i = 0
        switch_prob = 1.0 / max(self.expected_regime_length, 1)
        regime_mean = float(np.clip(rng.normal(self.base_mean, self.regime_spread), 0.05, 0.95))
        while i < n:
            if rng.random() < switch_prob:
                regime_mean = float(np.clip(rng.normal(self.base_mean, self.regime_spread), 0.05, 0.95))
            difficulty[i] = np.clip(rng.normal(regime_mean, self.within_spread), 0.0, 1.0)
            i += 1
        return DifficultyTrace(name=name, raw_difficulty=difficulty,
                               sharpness=_draw_sharpness(rng, n),
                               confidence_shift=_draw_confidence_shift(
                                   rng, n, noise=self.confidence_noise))
