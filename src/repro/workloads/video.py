"""CV workloads: real-time object classification over streamed video.

The paper uses 8 one-hour videos (urban scenes, day/night) sampled at 30 fps.
We synthesize video-like difficulty streams: consecutive frames are highly
correlated (objects move slowly relative to the frame rate), scenes change
occasionally, and lighting phases modulate how hard classification is.
Arrival times are fixed-rate at the video frame rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.utils.rng import RngFactory
from repro.workloads.arrivals import fixed_rate_arrivals
from repro.workloads.difficulty import DifficultyTrace, RandomWalkDifficulty

__all__ = ["VideoWorkload", "make_video_workload", "VIDEO_SCENE_PRESETS"]

# Named scene presets loosely matching the paper's corpus (urban day / night /
# highway) — they differ in mean difficulty and how often scenes change.
VIDEO_SCENE_PRESETS: Dict[str, Dict[str, float]] = {
    "urban-day": {"mean": 0.22, "volatility": 0.018, "scene_change_prob": 0.0015},
    "urban-night": {"mean": 0.34, "volatility": 0.025, "scene_change_prob": 0.0025},
    "highway": {"mean": 0.16, "volatility": 0.012, "scene_change_prob": 0.0008},
    "crossroads": {"mean": 0.28, "volatility": 0.022, "scene_change_prob": 0.0030},
}


@dataclass
class VideoWorkload:
    """A video classification workload: difficulty trace + arrival times."""

    name: str
    trace: DifficultyTrace
    arrival_times_ms: np.ndarray
    fps: float

    def __len__(self) -> int:
        return len(self.trace)


def make_video_workload(name: str = "urban-day", num_frames: int = 20_000,
                        fps: float = 30.0, seed: int = 0,
                        preset_overrides: Optional[Dict[str, float]] = None) -> VideoWorkload:
    """Create a synthetic video workload.

    Parameters
    ----------
    name:
        Scene preset name (see :data:`VIDEO_SCENE_PRESETS`) or any string; an
        unknown name falls back to ``urban-day`` statistics.
    num_frames:
        Number of requests (frames) in the stream.
    fps:
        Frame rate; frames arrive at a fixed interval of ``1000 / fps`` ms.
    seed:
        Workload seed (independent streams for difficulty and arrivals).
    """
    rng_factory = RngFactory(seed)
    preset = dict(VIDEO_SCENE_PRESETS.get(name, VIDEO_SCENE_PRESETS["urban-day"]))
    if preset_overrides:
        preset.update(preset_overrides)
    process = RandomWalkDifficulty(
        mean=preset["mean"],
        volatility=preset["volatility"],
        scene_change_prob=preset["scene_change_prob"],
    )
    trace = process.generate(num_frames, rng_factory.generator(f"video:{name}:difficulty"),
                             name=f"video:{name}")
    arrivals = fixed_rate_arrivals(num_frames, rate_qps=fps)
    return VideoWorkload(name=name, trace=trace, arrival_times_ms=arrivals, fps=fps)


def list_video_presets() -> List[str]:
    """Names of the built-in scene presets."""
    return sorted(VIDEO_SCENE_PRESETS)
