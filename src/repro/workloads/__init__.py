"""Workload generators: drifting input-difficulty streams and arrival traces.

The paper drives its evaluation with real video streams (CV), Amazon/IMDB
review streams (NLP), CNN/DailyMail and SQuAD prompts (generative), and
Microsoft Azure Functions arrival traces.  None of those datasets are
available offline, so this subpackage generates synthetic equivalents that
preserve the statistical properties Apparate's adaptation reacts to:

* **CV video** streams have high spatiotemporal continuity (difficulty follows
  a slow bounded random walk) with occasional scene changes and day/night
  phases.
* **NLP review** streams have little continuity between adjacent requests but
  shift regime when the stream moves to a new product category or user.
* **Arrival traces** are either bursty MAF-like processes or Poisson.
"""

from repro.workloads.difficulty import (
    InputSample,
    DifficultyTrace,
    RandomWalkDifficulty,
    RegimeSwitchDifficulty,
)
from repro.workloads.video import VideoWorkload, make_video_workload
from repro.workloads.nlp import NLPWorkload, make_nlp_workload
from repro.workloads.arrivals import (
    poisson_arrivals,
    fixed_rate_arrivals,
    maf_trace_arrivals,
    diurnal_arrivals,
    flash_crowd_arrivals,
    trace_arrivals,
)

__all__ = [
    "InputSample",
    "DifficultyTrace",
    "RandomWalkDifficulty",
    "RegimeSwitchDifficulty",
    "VideoWorkload",
    "make_video_workload",
    "NLPWorkload",
    "make_nlp_workload",
    "poisson_arrivals",
    "fixed_rate_arrivals",
    "maf_trace_arrivals",
    "diurnal_arrivals",
    "flash_crowd_arrivals",
    "trace_arrivals",
]
