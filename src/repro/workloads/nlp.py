"""NLP classification workloads: streamed sentiment analysis.

The paper converts the Amazon product reviews and IMDB movie reviews datasets
into streams (ordering by product category / frequent reviewer, or streaming
review sentences in order) and replays them under Azure-Functions-derived
arrival traces.  We synthesize statistically-equivalent streams:

* **amazon-like** — requests grouped into product-category/user regimes whose
  mean difficulty jumps at regime boundaries; little correlation between
  adjacent requests within a regime.
* **imdb-like** — sentence-by-sentence streaming of longer reviews gives
  short runs of correlated difficulty (sentences of one review) separated by
  jumps between reviews.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.utils.rng import RngFactory
from repro.workloads.arrivals import (flash_crowd_arrivals,
                                      maf_trace_arrivals, poisson_arrivals,
                                      trace_arrivals)
from repro.workloads.difficulty import DifficultyTrace, RegimeSwitchDifficulty

__all__ = ["NLPWorkload", "make_nlp_workload", "NLP_DATASET_PRESETS"]

NLP_DATASET_PRESETS: Dict[str, Dict[str, float]] = {
    # Amazon reviews: category/user regimes of a few hundred requests.
    "amazon": {"base_mean": 0.45, "regime_spread": 0.16, "within_spread": 0.14,
               "expected_regime_length": 400},
    # IMDB review sentences: shorter regimes (one review), slightly easier.
    "imdb": {"base_mean": 0.40, "regime_spread": 0.20, "within_spread": 0.10,
             "expected_regime_length": 24},
}


@dataclass
class NLPWorkload:
    """An NLP classification workload: difficulty trace + arrival times."""

    name: str
    trace: DifficultyTrace
    arrival_times_ms: np.ndarray

    def __len__(self) -> int:
        return len(self.trace)


def make_nlp_workload(dataset: str = "amazon", num_requests: int = 20_000,
                      rate_qps: float = 40.0, seed: int = 0,
                      arrival_process: str = "maf",
                      preset_overrides: Optional[Dict[str, float]] = None) -> NLPWorkload:
    """Create a synthetic NLP classification workload.

    Parameters
    ----------
    dataset:
        ``"amazon"`` or ``"imdb"`` (anything else falls back to amazon
        statistics).
    num_requests:
        Stream length.
    rate_qps:
        Average arrival rate; the MAF-like process is bursty around it.
    arrival_process:
        ``"maf"`` (bursty Azure-Functions-like), ``"poisson"``,
        ``"flash_crowd"`` (Poisson baseline with a sudden sustained 4x
        spike), or ``"trace:<path>"`` (replay a CSV of arrival timestamps
        in ms).
    """
    rng_factory = RngFactory(seed)
    preset = dict(NLP_DATASET_PRESETS.get(dataset, NLP_DATASET_PRESETS["amazon"]))
    if preset_overrides:
        preset.update(preset_overrides)
    process = RegimeSwitchDifficulty(
        base_mean=preset["base_mean"],
        regime_spread=preset["regime_spread"],
        within_spread=preset["within_spread"],
        expected_regime_length=int(preset["expected_regime_length"]),
    )
    trace = process.generate(num_requests,
                             rng_factory.generator(f"nlp:{dataset}:difficulty"),
                             name=f"nlp:{dataset}")
    arrival_rng = rng_factory.generator(f"nlp:{dataset}:arrivals")
    if arrival_process == "poisson":
        arrivals = poisson_arrivals(num_requests, rate_qps, arrival_rng)
    elif arrival_process == "maf":
        arrivals = maf_trace_arrivals(num_requests, rate_qps, arrival_rng)
    elif arrival_process == "flash_crowd":
        arrivals = flash_crowd_arrivals(num_requests, rate_qps, arrival_rng)
    elif arrival_process.startswith("trace:"):
        arrivals = trace_arrivals(num_requests,
                                  arrival_process[len("trace:"):])
    else:
        raise ValueError(f"unknown arrival_process {arrival_process!r}; "
                         "choose from ('maf', 'poisson', 'flash_crowd', "
                         "'trace:<path>')")
    return NLPWorkload(name=dataset, trace=trace, arrival_times_ms=arrivals)
