"""Content-addressed workload-trace cache.

Materializing a workload — difficulty traces, arrival processes, per-token
difficulty walks — is pure generation from a :class:`~repro.api.specs.
WorkloadSpec` and a seed, yet it used to run once per ``Experiment.run`` call,
once per sweep grid point that re-derived the same spec, and once per
benchmark that paired the same model with the same stream.  At benchmark and
parallel-sweep scale the regeneration dominates: the trace is identical every
time because the generators are fully seeded.

This module memoizes materialized traces under a **content-addressed key**:
the SHA-256 of the spec's resolved content — kind, resolved source, length,
resolved rate, the *effective* seed, arrival process and preset overrides —
so two specs that would generate the same stream share one entry regardless
of how they were spelled (``source=""`` and ``source="urban-day"`` hash
identically).  Anything that changes the generated trace changes the key,
which is the entire invalidation rule: there is nothing to invalidate by
hand, stale entries are simply never addressed again and age out of the
bounded LRU.

Cached workloads are shared objects.  That is safe because runs never mutate
workloads (the tenancy layer re-tags via ``dataclasses.replace`` / runtime
maps precisely so streams can be shared across sweep grid points), and it is
what makes the parallel sweep executor cheap: the parent process materializes
the trace once, and forked workers inherit the cache copy-on-write instead of
rebuilding it per grid point.

The cache is process-local and bounded (``REPRO_TRACE_CACHE_SIZE``
entries, default 32, least-recently-used eviction; ``0`` disables caching).
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

__all__ = ["TraceCache", "trace_key", "get_or_materialize", "cache_info",
           "cache_clear", "configure"]

#: Default LRU capacity; override with the REPRO_TRACE_CACHE_SIZE env var.
DEFAULT_MAXSIZE = 32


def _arrival_trace_digest(arrival_process: Optional[str]) -> Optional[str]:
    """Content digest of a ``trace:<path>`` arrival CSV (``None`` otherwise).

    Replayed traces are the one generation input that lives *outside* the
    spec: the same path can name different bytes across runs.  Hashing the
    file's content keeps the invalidation rule honest — editing the CSV
    changes the key, and two paths holding identical bytes share one entry.
    A missing file hashes to a sentinel so the key is still computable (the
    builder will raise the real error).
    """
    if not arrival_process or not str(arrival_process).startswith("trace:"):
        return None
    path = str(arrival_process)[len("trace:"):]
    try:
        with open(path, "rb") as handle:
            return hashlib.sha256(handle.read()).hexdigest()
    except OSError:
        return "missing"


def trace_key(spec: Any, default_seed: int = 0) -> str:
    """Content-addressed key of the trace ``spec`` would materialize.

    The key covers every input of the generation: two ``(spec, seed)`` pairs
    collide exactly when they generate bit-identical workloads.  Defaults are
    resolved first so equivalent spellings share one entry; with
    ``prefix_groups == 0`` the prefix share/length knobs are inert (no prefix
    stream is drawn), so they are excluded from the key in that case.
    """
    seed = spec.seed if spec.seed is not None else int(default_seed)
    overrides = None if not spec.overrides else tuple(
        sorted((str(k), float(v)) for k, v in spec.overrides.items()))
    prefix_groups = int(getattr(spec, "prefix_groups", 0))
    prefix = None if prefix_groups == 0 else (
        prefix_groups, float(spec.prefix_share), int(spec.prefix_tokens))
    # A replayed trace is addressed by its bytes, not its path: two paths
    # holding identical CSVs share one entry, and editing the CSV in place
    # changes the key.
    digest = _arrival_trace_digest(spec.arrival_process)
    arrival = ("trace", digest) if digest is not None else spec.arrival_process
    payload = repr(("repro.workload_trace/v2", spec.kind,
                    spec.resolved_source(), int(spec.requests),
                    float(spec.resolved_rate()), int(seed),
                    arrival, overrides, prefix))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TraceCache:
    """A bounded LRU of materialized workloads keyed by content address."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if int(maxsize) < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_build(self, key: str, builder) -> Any:
        """Return the cached trace for ``key``, materializing on first use.

        ``builder`` runs outside the lock (generation can take seconds); a
        concurrent duplicate build is tolerated — last writer wins and both
        callers get a correct, identical object.
        """
        if self.maxsize == 0:
            self.misses += 1
            return builder()
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
        value = builder()
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = 0

    def info(self) -> Dict[str, int]:
        """Counters snapshot: hits, misses, evictions, current size, capacity."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions, "size": len(self._entries),
                    "maxsize": self.maxsize}


def _default_maxsize() -> int:
    raw = os.environ.get("REPRO_TRACE_CACHE_SIZE", "").strip()
    if not raw:
        return DEFAULT_MAXSIZE
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_MAXSIZE


#: The process-wide cache instance (inherited copy-on-write by forked sweep
#: workers, so a trace the parent materialized is free in every worker).
TRACE_CACHE = TraceCache(maxsize=_default_maxsize())


def get_or_materialize(spec: Any, default_seed: int = 0) -> Any:
    """Materialize ``spec`` through the process-wide trace cache."""
    key = trace_key(spec, default_seed)
    return TRACE_CACHE.get_or_build(key,
                                    lambda: spec.materialize(default_seed))


def cache_info() -> Dict[str, int]:
    """Hit/miss/eviction counters of the process-wide trace cache."""
    return TRACE_CACHE.info()


def cache_clear() -> None:
    """Drop every cached trace and reset the counters."""
    TRACE_CACHE.clear()


def configure(maxsize: Optional[int] = None) -> TraceCache:
    """Re-bound the process-wide cache (``0`` disables caching); returns it."""
    if maxsize is not None:
        if int(maxsize) < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        with TRACE_CACHE._lock:
            TRACE_CACHE.maxsize = int(maxsize)
            while len(TRACE_CACHE._entries) > TRACE_CACHE.maxsize:
                TRACE_CACHE._entries.popitem(last=False)
                TRACE_CACHE.evictions += 1
    return TRACE_CACHE
