"""Request arrival processes.

Four processes cover the paper's setups plus the autoscaling studies:

* :func:`fixed_rate_arrivals` — deterministic inter-arrival times (video
  frames at a fixed fps).
* :func:`poisson_arrivals` — exponential inter-arrival times (generative
  workloads, §4.1).
* :func:`maf_trace_arrivals` — a bursty process emulating Microsoft Azure
  Functions invocation traces: the per-second rate follows a log-normal
  modulated random walk with occasional bursts, and requests within a second
  are spread uniformly.  This reproduces the queueing variability that the
  classification experiments rely on.
* :func:`diurnal_arrivals` — a smooth day/night cycle between a low and a
  high rate (raised-cosine), the canonical workload for fleet autoscaling:
  the right fleet size genuinely changes over the trace.
* :func:`flash_crowd_arrivals` — Poisson baseline with one sudden sustained
  rate spike (a flash crowd hitting the service), the stress shape for
  multi-tenant isolation and failure-injection studies.
* :func:`trace_arrivals` — replay an explicit timestamp array (or a CSV file
  of timestamps), for driving the simulators with recorded traces.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Union

import numpy as np

__all__ = ["fixed_rate_arrivals", "poisson_arrivals", "maf_trace_arrivals",
           "diurnal_arrivals", "flash_crowd_arrivals", "trace_arrivals"]


def fixed_rate_arrivals(n: int, rate_qps: float, start_ms: float = 0.0) -> np.ndarray:
    """Arrival timestamps (ms) for ``n`` requests at a constant rate."""
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    interval_ms = 1000.0 / rate_qps
    return start_ms + interval_ms * np.arange(n, dtype=float)


def poisson_arrivals(n: int, rate_qps: float, rng: np.random.Generator,
                     start_ms: float = 0.0) -> np.ndarray:
    """Arrival timestamps (ms) for a Poisson process with the given mean rate."""
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    gaps_ms = rng.exponential(1000.0 / rate_qps, size=n)
    return start_ms + np.cumsum(gaps_ms)


def maf_trace_arrivals(n: int, mean_rate_qps: float, rng: np.random.Generator,
                       burstiness: float = 0.35, burst_prob: float = 0.02,
                       burst_multiplier: float = 3.0, start_ms: float = 0.0) -> np.ndarray:
    """Bursty arrival timestamps emulating Azure Functions invocation traces.

    The per-second request rate follows a mean-reverting multiplicative random
    walk around ``mean_rate_qps``; with probability ``burst_prob`` a second
    becomes a burst with ``burst_multiplier``x the current rate.  Requests are
    spread uniformly within each second.
    """
    if mean_rate_qps <= 0:
        raise ValueError("mean_rate_qps must be positive")
    times = np.empty(n, dtype=float)
    produced = 0
    second = 0
    log_rate = np.log(mean_rate_qps)
    target_log = np.log(mean_rate_qps)
    while produced < n:
        log_rate += 0.1 * (target_log - log_rate) + rng.normal(0.0, burstiness * 0.25)
        rate = float(np.exp(log_rate))
        if rng.random() < burst_prob:
            rate *= burst_multiplier
        count = rng.poisson(max(rate, 0.1))
        count = int(min(count, n - produced))
        if count > 0:
            offsets = np.sort(rng.uniform(0.0, 1000.0, size=count))
            times[produced:produced + count] = start_ms + second * 1000.0 + offsets
            produced += count
        second += 1
    return times


def diurnal_arrivals(n: int, low_qps: float, high_qps: float, period_s: float = 60.0,
                     rng: Optional[np.random.Generator] = None,
                     start_ms: float = 0.0) -> np.ndarray:
    """Arrival timestamps following a smooth low → high → low rate cycle.

    The per-second rate traces a raised cosine from ``low_qps`` up to
    ``high_qps`` and back over each ``period_s`` seconds — a compressed
    day/night traffic cycle.  With ``rng`` the per-second counts are Poisson
    draws around the cycle; without it the process is fully deterministic
    (fractional arrivals carry over between seconds), which autoscaling
    determinism tests rely on.
    """
    if low_qps <= 0 or high_qps < low_qps:
        raise ValueError(f"need 0 < low_qps <= high_qps, "
                         f"got low={low_qps}, high={high_qps}")
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    times = np.empty(n, dtype=float)
    produced = 0
    second = 0
    carry = 0.0
    while produced < n:
        phase = (second % period_s) / period_s
        rate = low_qps + (high_qps - low_qps) * 0.5 * (1.0 - np.cos(2.0 * np.pi * phase))
        if rng is not None:
            count = int(rng.poisson(rate))
        else:
            carry += rate
            count = int(carry)
            carry -= count
        count = int(min(count, n - produced))
        if count > 0:
            if rng is not None:
                offsets = np.sort(rng.uniform(0.0, 1000.0, size=count))
            else:
                offsets = 1000.0 * (np.arange(count, dtype=float) + 0.5) / count
            times[produced:produced + count] = start_ms + second * 1000.0 + offsets
            produced += count
        second += 1
    return times


def flash_crowd_arrivals(n: int, base_qps: float, rng: np.random.Generator,
                         spike_start_s: float = 10.0,
                         spike_multiplier: float = 4.0,
                         spike_duration_s: Optional[float] = None,
                         start_ms: float = 0.0) -> np.ndarray:
    """Poisson baseline with one sudden, sustained rate spike.

    Requests arrive Poisson at ``base_qps`` until ``spike_start_s``, then at
    ``spike_multiplier * base_qps`` for ``spike_duration_s`` seconds (``None``
    keeps the spike going for the rest of the stream), then back at the base
    rate.  The instantaneous step — no ramp — is the point: it is the
    flash-crowd shape that overwhelms queues faster than reactive autoscalers
    can follow, the stress case for tenant isolation and failure injection.
    """
    if base_qps <= 0:
        raise ValueError(f"base_qps must be positive, got {base_qps}")
    if spike_start_s < 0:
        raise ValueError(f"spike_start_s must be >= 0, got {spike_start_s}")
    if spike_multiplier < 1.0:
        raise ValueError(f"spike_multiplier must be >= 1, "
                         f"got {spike_multiplier}")
    if spike_duration_s is not None and spike_duration_s <= 0:
        raise ValueError(f"spike_duration_s must be positive, "
                         f"got {spike_duration_s}")
    spike_start = 1000.0 * spike_start_s
    spike_end = np.inf if spike_duration_s is None \
        else spike_start + 1000.0 * spike_duration_s
    times = np.empty(n, dtype=float)
    gaps = rng.exponential(1.0, size=n)   # unit-rate gaps, scaled per regime
    t = 0.0
    for i in range(n):
        rate = base_qps * spike_multiplier if spike_start <= t < spike_end \
            else base_qps
        t += gaps[i] * 1000.0 / rate
        times[i] = t
    return start_ms + times


def trace_arrivals(n: int,
                   timestamps_ms: Union[str, Sequence[float], np.ndarray],
                   start_ms: float = 0.0) -> np.ndarray:
    """Replay the first ``n`` timestamps of an explicit arrival trace.

    ``timestamps_ms`` is an array-like of arrival times in milliseconds, or
    the path of a CSV/text file of them (any whitespace/comma separated
    layout ``numpy.loadtxt`` reads).  The trace must hold at least ``n``
    finite, non-negative timestamps; they are sorted before replay so
    unordered recordings work.
    """
    if isinstance(timestamps_ms, (str, os.PathLike)):
        path = os.fspath(timestamps_ms)
        if not os.path.exists(path):
            raise ValueError(f"arrival trace file not found: {path!r}")
        with open(path) as handle:
            tokens = handle.read().replace(",", " ").split()
        try:
            values = np.array([float(token) for token in tokens])
        except ValueError as exc:
            raise ValueError(f"arrival trace {path!r} holds a non-numeric "
                             f"entry: {exc}") from None
    else:
        values = np.asarray(timestamps_ms, dtype=float).ravel()
    if values.size < n:
        raise ValueError(f"arrival trace holds {values.size} timestamps; "
                         f"{n} requested")
    if not np.all(np.isfinite(values)):
        raise ValueError("arrival trace timestamps must be finite")
    if np.any(values < 0):
        raise ValueError("arrival trace timestamps must be >= 0")
    return start_ms + np.sort(values)[:n]
