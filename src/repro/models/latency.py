"""Analytic latency model: per-layer breakdown and batch-size scaling.

Apparate's runtime decisions consume exactly two latency artefacts that are
collected once per model during bootstrapping (§3.3):

1. a **layer-wise breakdown** of inference time (per batch size), used to
   translate "input exited at depth p" into saved milliseconds, and
2. the **latency overhead of each ramp**, used in utility scores and to
   enforce the ramp budget.

This module provides both from the model spec and its dataflow graph.  The
per-layer split follows each node's FLOPs share; the batch-size scaling law
captures GPU amortization: a batch of ``b`` inputs takes
``t1 * (1 + c * (b - 1))`` where ``c`` is the model's marginal batching cost
(< 1, so throughput grows with batch size while per-request latency also
grows — the tension of Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graph.builders import build_graph_for_model
from repro.graph.ir import ModelGraph
from repro.models.zoo import ModelSpec

__all__ = ["LatencyProfile", "build_latency_profile"]


@dataclass
class LatencyProfile:
    """Latency breakdown of one model.

    Attributes
    ----------
    spec:
        The model this profile describes.
    node_names:
        Node names in topological order.
    node_latency_ms:
        Latency attributed to each node at batch size 1 (same order).
    cumulative_fraction:
        Fraction of total bs=1 latency spent once each node has finished.
    """

    spec: ModelSpec
    node_names: List[str]
    node_latency_ms: np.ndarray
    cumulative_fraction: np.ndarray

    def __post_init__(self) -> None:
        self.node_latency_ms = np.asarray(self.node_latency_ms, dtype=float)
        self.cumulative_fraction = np.asarray(self.cumulative_fraction, dtype=float)
        self._index = {name: i for i, name in enumerate(self.node_names)}

    # ------------------------------------------------------------ whole model
    def total_latency_ms(self, batch_size: int = 1) -> float:
        """Serving time of a full forward pass for a batch of ``batch_size``."""
        return self.batch_scale(batch_size) * float(self.node_latency_ms.sum())

    def batch_scale(self, batch_size: int) -> float:
        """Multiplier on bs=1 latency when serving ``batch_size`` inputs."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return 1.0 + self.spec.batch_marginal_cost * (batch_size - 1)

    def throughput_qps(self, batch_size: int) -> float:
        """Steady-state throughput (queries/second) at the given batch size."""
        return 1000.0 * batch_size / self.total_latency_ms(batch_size)

    def scaled(self, speed: float) -> "LatencyProfile":
        """This profile on hardware running ``speed``× faster (or slower).

        Every per-node latency divides by ``speed`` while the relative
        breakdown (``cumulative_fraction``) is unchanged — the mechanism
        behind heterogeneous fleets: a 2× replica's platform carries
        ``profile.scaled(2.0)`` so its batching policy, SLO checks and the
        ``least_work_left`` balancer all cost its queue in true milliseconds.
        """
        if not speed > 0.0:
            raise ValueError(f"speed must be positive, got {speed}")
        if speed == 1.0:
            return self
        return LatencyProfile(
            spec=self.spec,
            node_names=list(self.node_names),
            node_latency_ms=self.node_latency_ms / speed,
            cumulative_fraction=self.cumulative_fraction.copy(),
        )

    # ------------------------------------------------------------- per depth
    def depth_fraction(self, node_name: str) -> float:
        """Fraction of bs=1 serving time elapsed when ``node_name`` completes."""
        return float(self.cumulative_fraction[self._index[node_name]])

    def latency_to_depth(self, depth_fraction: float, batch_size: int = 1) -> float:
        """Serving time needed to reach ``depth_fraction`` of the model."""
        depth_fraction = float(np.clip(depth_fraction, 0.0, 1.0))
        return depth_fraction * self.total_latency_ms(batch_size)

    def savings_for_exit(self, depth_fraction: float, batch_size: int = 1) -> float:
        """Serving time saved by releasing a result at ``depth_fraction``."""
        return self.total_latency_ms(batch_size) - self.latency_to_depth(depth_fraction, batch_size)

    # ------------------------------------------------------------------ ramps
    def ramp_overhead_ms(self, ramp_flops_fraction: float, batch_size: int = 1) -> float:
        """Latency a ramp of the given relative cost adds to one batch."""
        return float(ramp_flops_fraction) * self.total_latency_ms(batch_size)

    def sweep_batch_sizes(self, batch_sizes: Sequence[int]) -> Dict[int, Dict[str, float]]:
        """Latency/throughput table across batch sizes (used for Figure 1)."""
        table: Dict[int, Dict[str, float]] = {}
        for bs in batch_sizes:
            table[int(bs)] = {
                "latency_ms": self.total_latency_ms(bs),
                "throughput_qps": self.throughput_qps(bs),
            }
        return table


def build_latency_profile(spec: ModelSpec, graph: Optional[ModelGraph] = None) -> LatencyProfile:
    """Construct the latency profile of ``spec`` from its dataflow graph.

    Each node receives a share of the model's bs=1 latency proportional to its
    FLOPs share (nodes with zero FLOPs, e.g. residual adds, receive a small
    epsilon so the cumulative curve is strictly increasing).
    """
    graph = graph or build_graph_for_model(spec.name)
    order = graph.topological_order()
    shares = np.array([max(node.flops_share, 1e-6) for node in order], dtype=float)
    shares /= shares.sum()
    node_latency = shares * spec.bs1_latency_ms
    cumulative = np.cumsum(shares)
    return LatencyProfile(
        spec=spec,
        node_names=[node.name for node in order],
        node_latency_ms=node_latency,
        cumulative_fraction=cumulative,
    )
