"""Quantized model variants (§4.2, "Other compute optimizations").

Post-training Int8 quantization makes a model faster but less
overparameterized, which slightly reduces how many inputs can exit early.  We
model a quantized variant as the same architecture with:

* reduced per-layer latency (Int8 kernels are faster than FP16/FP32), and
* reduced ``headroom``, which shifts effective input difficulty upward.

The paper reports that Apparate's wins "largely persist" on quantized
BERT-base/large, with a mild dip (median wins 7.3–19.4% vs 10.0–24.2%).
"""

from __future__ import annotations

from repro.models.zoo import ModelSpec, register_model

__all__ = ["quantized_spec"]

# Int8 inference speedup relative to the baseline precision.
_INT8_SPEEDUP = 1.6
# Quantization removes some of the overparameterization early exits rely on.
_HEADROOM_RETENTION = 0.82


def quantized_spec(spec: ModelSpec, register: bool = True) -> ModelSpec:
    """Return (and optionally register) the Int8-quantized variant of ``spec``."""
    quantized = spec.with_overrides(
        name=f"{spec.name}-int8",
        bs1_latency_ms=spec.bs1_latency_ms / _INT8_SPEEDUP,
        default_slo_ms=spec.default_slo_ms / _INT8_SPEEDUP,
        headroom=spec.headroom * _HEADROOM_RETENTION,
        params_millions=spec.params_millions,  # weights shrink, count unchanged
    )
    if register:
        register_model(quantized)
    return quantized
