"""Model registry calibrated to the paper's evaluation corpus.

Latency numbers (batch-size-1 inference time and default SLO) come from
Table 5 of the paper; parameter counts and architecture descriptors match the
public checkpoints the paper uses (PyTorch Model Zoo / HuggingFace).  The
``headroom`` field encodes how overparameterized a model is for its workload:
it scales the fraction of inputs whose prediction stabilizes early, which is
the property early exits capitalize on (§2.2).  Quantized variants have lower
headroom (§4.2: quantization "reduces model overparameterization").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

__all__ = ["Task", "ModelSpec", "register_model", "get_model", "list_models", "MODEL_ZOO"]


class Task(str, enum.Enum):
    """Kind of workload a model serves."""

    CV_CLASSIFICATION = "cv_classification"
    NLP_CLASSIFICATION = "nlp_classification"
    GENERATIVE = "generative"


@dataclass(frozen=True)
class ModelSpec:
    """Static description of one servable model.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"resnet50"``.
    task:
        Workload kind (CV / NLP classification or generative).
    family:
        Architecture family (``resnet``, ``vgg``, ``bert``, ``gpt``, ...).
    params_millions:
        Total trainable parameters, in millions.
    bs1_latency_ms:
        Inference latency with batch size 1 (Table 5); for generative models
        this is the per-decode-step latency.
    default_slo_ms:
        Default SLO (2x the bs1 latency for classification, Table 5).
    num_classes:
        Output cardinality for classification heads.
    headroom:
        Overparameterization factor in [0, 1]; higher values mean more inputs
        can exit early.  Calibrated per family so that optimal-exit latency
        wins land in the ranges of §2.2 / §4.2.
    batch_marginal_cost:
        Marginal serving-time cost of each extra item in a batch relative to
        the bs=1 time (captures GPU amortization; lower = better batching).
    num_blocks:
        Number of coarse blocks (residual blocks or transformer layers).
    hidden_width:
        Representative hidden width, used to size ramp parameters.
    """

    name: str
    task: Task
    family: str
    params_millions: float
    bs1_latency_ms: float
    default_slo_ms: float
    num_classes: int = 1000
    headroom: float = 0.8
    batch_marginal_cost: float = 0.3
    num_blocks: int = 0
    hidden_width: int = 0

    def with_overrides(self, **kwargs) -> "ModelSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @property
    def is_generative(self) -> bool:
        return self.task is Task.GENERATIVE


MODEL_ZOO: Dict[str, ModelSpec] = {}


def register_model(spec: ModelSpec) -> ModelSpec:
    """Add ``spec`` to the registry (overwriting any existing entry)."""
    MODEL_ZOO[spec.name] = spec
    return spec


def get_model(name: str) -> ModelSpec:
    """Look up a registered model spec by name."""
    try:
        return MODEL_ZOO[name.lower()]
    except KeyError as exc:
        raise KeyError(
            f"unknown model {name!r}; known models: {sorted(MODEL_ZOO)}"
        ) from exc


def list_models(task: Optional[Task] = None) -> List[ModelSpec]:
    """Return registered specs, optionally filtered by task."""
    specs = sorted(MODEL_ZOO.values(), key=lambda s: s.name)
    if task is None:
        return specs
    return [s for s in specs if s.task is task]


# ---------------------------------------------------------------------------
# Default corpus (Table 5 plus the generative models of §4.3).
# ---------------------------------------------------------------------------

_DEFAULTS = [
    # CV classification (ImageNet-pretrained, PyTorch Model Zoo).
    ModelSpec("resnet18", Task.CV_CLASSIFICATION, "resnet", 11.7, 6.5, 13.0,
              num_classes=1000, headroom=0.93, batch_marginal_cost=0.28,
              num_blocks=8, hidden_width=512),
    ModelSpec("resnet50", Task.CV_CLASSIFICATION, "resnet", 25.6, 16.4, 32.8,
              num_classes=1000, headroom=0.88, batch_marginal_cost=0.28,
              num_blocks=16, hidden_width=2048),
    ModelSpec("resnet101", Task.CV_CLASSIFICATION, "resnet", 44.5, 33.3, 66.6,
              num_classes=1000, headroom=0.90, batch_marginal_cost=0.28,
              num_blocks=33, hidden_width=2048),
    ModelSpec("vgg11", Task.CV_CLASSIFICATION, "vgg", 132.9, 3.3, 10.0,
              num_classes=1000, headroom=0.90, batch_marginal_cost=0.32,
              num_blocks=11, hidden_width=512),
    ModelSpec("vgg13", Task.CV_CLASSIFICATION, "vgg", 133.0, 3.8, 10.0,
              num_classes=1000, headroom=0.90, batch_marginal_cost=0.32,
              num_blocks=13, hidden_width=512),
    ModelSpec("vgg16", Task.CV_CLASSIFICATION, "vgg", 138.4, 4.5, 10.0,
              num_classes=1000, headroom=0.91, batch_marginal_cost=0.32,
              num_blocks=16, hidden_width=512),
    # NLP classification (sentiment analysis, HuggingFace checkpoints).
    ModelSpec("distilbert-base", Task.NLP_CLASSIFICATION, "bert", 66.0, 15.5, 31.0,
              num_classes=2, headroom=0.50, batch_marginal_cost=0.42,
              num_blocks=6, hidden_width=768),
    ModelSpec("bert-base", Task.NLP_CLASSIFICATION, "bert", 110.0, 29.4, 58.8,
              num_classes=2, headroom=0.54, batch_marginal_cost=0.42,
              num_blocks=12, hidden_width=768),
    ModelSpec("bert-large", Task.NLP_CLASSIFICATION, "bert", 345.0, 63.2, 126.4,
              num_classes=2, headroom=0.56, batch_marginal_cost=0.42,
              num_blocks=24, hidden_width=1024),
    ModelSpec("gpt2-medium", Task.NLP_CLASSIFICATION, "gpt", 345.0, 103.0, 206.0,
              num_classes=2, headroom=0.58, batch_marginal_cost=0.42,
              num_blocks=24, hidden_width=1024),
    # Generative models (§4.3): bs1 latency here is per decoding step.
    # Decode steps are memory-bound, so batching extra sequences is cheap
    # (low marginal cost); headroom reflects how early token predictions
    # stabilize (very early for T5 summarization, later for Llama2 QA).
    ModelSpec("t5-large", Task.GENERATIVE, "t5", 770.0, 18.0, 0.0,
              num_classes=32_128, headroom=0.90, batch_marginal_cost=0.05,
              num_blocks=24, hidden_width=1024),
    ModelSpec("llama2-7b", Task.GENERATIVE, "llama", 7000.0, 28.0, 0.0,
              num_classes=32_000, headroom=0.50, batch_marginal_cost=0.06,
              num_blocks=32, hidden_width=4096),
    ModelSpec("llama2-13b", Task.GENERATIVE, "llama", 13000.0, 42.0, 0.0,
              num_classes=32_000, headroom=0.58, batch_marginal_cost=0.06,
              num_blocks=40, hidden_width=5120),
]

for _spec in _DEFAULTS:
    register_model(_spec)
