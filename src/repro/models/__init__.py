"""Model-execution substrate: model zoo, latency profiles and prediction model.

The paper serves real PyTorch/ONNX models on GPUs.  This subpackage replaces
that substrate with (i) a registry of model specifications calibrated to the
paper's Table 5 (batch-size-1 latencies, parameter counts, SLOs), (ii) an
analytic per-layer latency model with batch-size scaling, and (iii) a
synthetic prediction model that maps each input's latent difficulty to
per-ramp confidence/correctness while preserving the monotonicity properties
Apparate's adaptation algorithms rely on.
"""

from repro.models.zoo import ModelSpec, Task, get_model, list_models, register_model
from repro.models.latency import LatencyProfile, build_latency_profile
from repro.models.prediction import PredictionModel, RampObservation
from repro.models.execution import ModelExecutor, ExecutionResult
from repro.models.quantization import quantized_spec

__all__ = [
    "ModelSpec",
    "Task",
    "get_model",
    "list_models",
    "register_model",
    "LatencyProfile",
    "build_latency_profile",
    "PredictionModel",
    "RampObservation",
    "ModelExecutor",
    "ExecutionResult",
    "quantized_spec",
]
