"""Simulated model execution: turn batches of inputs into timing + feedback.

``ModelExecutor`` is the GPU stand-in.  Given a batch of inputs and the
currently-deployed early-exit configuration (active ramp depths, per-ramp
thresholds and per-ramp overhead fractions), it produces for every input:

* the time at which its *result* is released (either at the first exiting
  ramp or at the end of the model),
* the full batch processing time (which is what occupies the accelerator —
  with Apparate, inputs always run to completion, so platform throughput is
  governed by this number plus ramp overheads), and
* the per-ramp observations streamed back to the controller (error score and
  agreement with the original model) for *all* active ramps.

The executor is deliberately stateless across batches; all adaptation state
lives in the controller (§3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.models.latency import LatencyProfile
from repro.models.prediction import PredictionModel, RampObservation
from repro.models.zoo import ModelSpec

__all__ = ["ExecutionResult", "BatchExecution", "ModelExecutor"]


@dataclass
class ExecutionResult:
    """Outcome of serving one input within a batch."""

    sample_index: int
    exit_depth: Optional[float]
    exit_ramp_id: Optional[int]
    result_latency_ms: float
    full_latency_ms: float
    final_correct: bool
    observations: List[RampObservation] = field(default_factory=list)

    @property
    def exited(self) -> bool:
        return self.exit_depth is not None


@dataclass
class BatchExecution:
    """Outcome of serving one batch."""

    batch_size: int
    gpu_time_ms: float
    results: List[ExecutionResult]


class ModelExecutor:
    """Simulated forward-pass executor for one model replica."""

    def __init__(self, spec: ModelSpec, profile: LatencyProfile,
                 prediction: PredictionModel) -> None:
        self.spec = spec
        self.profile = profile
        self.prediction = prediction

    # ------------------------------------------------------------------ main
    def execute_batch(
        self,
        raw_difficulties: Sequence[float],
        sharpness: Sequence[float],
        ramp_ids: Sequence[int],
        ramp_depths: Sequence[float],
        ramp_thresholds: Sequence[float],
        ramp_overhead_fractions: Sequence[float],
        batch_size: Optional[int] = None,
        confidence_shifts: Optional[Sequence[float]] = None,
    ) -> BatchExecution:
        """Serve one batch and return per-input results plus GPU occupancy.

        ``ramp_*`` sequences describe the currently active ramps in model
        order.  An empty configuration reproduces vanilla serving exactly.
        """
        n = len(raw_difficulties)
        if n == 0:
            raise ValueError("cannot execute an empty batch")
        if not (len(ramp_ids) == len(ramp_depths) == len(ramp_thresholds)
                == len(ramp_overhead_fractions)):
            raise ValueError("ramp description arrays must have equal length")
        bs = batch_size if batch_size is not None else n

        scale = self.profile.batch_scale(bs)
        base_full_ms = self.spec.bs1_latency_ms * scale
        ramp_overhead_ms = [float(f) * base_full_ms for f in ramp_overhead_fractions]
        total_overhead_ms = float(sum(ramp_overhead_ms))
        # GPU occupancy: every input runs the whole model plus every ramp.
        gpu_time_ms = base_full_ms + total_overhead_ms

        results: List[ExecutionResult] = []
        for idx in range(n):
            raw = float(raw_difficulties[idx])
            sharp = float(sharpness[idx])
            shift = float(confidence_shifts[idx]) if confidence_shifts is not None else 0.0
            observations = self.prediction.observe(raw, sharp, ramp_ids, ramp_depths,
                                                   confidence_shift=shift)

            exit_depth: Optional[float] = None
            exit_ramp: Optional[int] = None
            elapsed_overhead = 0.0
            result_latency = gpu_time_ms
            for obs, threshold, overhead in zip(observations, ramp_thresholds, ramp_overhead_ms):
                elapsed_overhead += overhead
                if threshold > 0.0 and obs.error_score < threshold:
                    exit_depth = obs.depth_fraction
                    exit_ramp = obs.ramp_id
                    result_latency = base_full_ms * obs.depth_fraction + elapsed_overhead
                    break

            exited_correct = True
            if exit_depth is not None:
                exited_correct = next(o.correct for o in observations if o.ramp_id == exit_ramp)
            results.append(ExecutionResult(
                sample_index=idx,
                exit_depth=exit_depth,
                exit_ramp_id=exit_ramp,
                result_latency_ms=float(result_latency),
                full_latency_ms=float(gpu_time_ms),
                final_correct=bool(exited_correct),
                observations=observations,
            ))
        return BatchExecution(batch_size=bs, gpu_time_ms=float(gpu_time_ms), results=results)

    # -------------------------------------------------------------- vanilla
    def vanilla_batch_time_ms(self, batch_size: int) -> float:
        """Serving time of a batch without any ramps (vanilla model)."""
        return self.spec.bs1_latency_ms * self.profile.batch_scale(batch_size)
