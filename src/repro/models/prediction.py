"""Synthetic prediction model: input difficulty -> per-ramp confidence.

The real system attaches small classifier ramps to intermediate layers and
compares the entropy of each ramp's prediction against a threshold.  Without
trained networks we model the quantity that matters to Apparate's algorithms:
for every input there is an *earliest depth* at which the original model's
prediction has emerged, and ramp confidence improves monotonically with depth
past that point.

Concretely, each input carries a latent ``raw difficulty`` in ``[0, 1]``
produced by the workload generator.  A model with overparameterization
``headroom`` maps it to an **effective difficulty**

    d = 1 - headroom + headroom * raw

interpreted as the fraction of model depth required before the ramp prediction
agrees with the final model.  A ramp at depth fraction ``p`` then reports an
entropy-like error score

    error(p) = sigmoid((d - p) / sharpness)

which decreases smoothly in ``p`` (sharpness is a per-input trait).  A ramp
exits when ``error < threshold``, so threshold 0 never exits and larger
thresholds exit strictly more inputs — the monotonicity property exploited by
the hill-climbing threshold search (§3.2).  The ramp's prediction matches the
original model's output iff ``p >= d``; below that depth it is correct only at
a small confusion rate.  This preserves the second property Apparate leans on:
later ramps exhibit exit rates at least as high as earlier ones (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.models.zoo import ModelSpec

__all__ = ["RampObservation", "PredictionModel", "effective_difficulty", "ramp_error_score"]

# Probability that a ramp placed before the input's required depth happens to
# agree with the original model anyway (label confusion floor).
_GUESS_AGREEMENT = 0.05


def effective_difficulty(raw_difficulty: np.ndarray | float, headroom: float) -> np.ndarray | float:
    """Map workload difficulty to the fraction of model depth an input needs."""
    return 1.0 - headroom + headroom * np.clip(raw_difficulty, 0.0, 1.0)


def ramp_error_score(difficulty: np.ndarray | float, depth: np.ndarray | float,
                     sharpness: np.ndarray | float = 0.06,
                     confidence_shift: np.ndarray | float = 0.0) -> np.ndarray | float:
    """Entropy-like error score of a ramp at ``depth`` for the given difficulty.

    ``confidence_shift`` models miscalibration: a positive shift lowers the
    reported error (over-confidence), so a fixed threshold admits inputs it
    should not; a negative shift raises it (under-confidence), suppressing
    exits that would have been correct.  Correctness itself is unaffected —
    only the confidence signal moves — which is exactly why statically tuned
    thresholds degrade under drift while Apparate's feedback-driven re-tuning
    does not.
    """
    z = (np.asarray(difficulty, dtype=float) - np.asarray(depth, dtype=float)) / np.maximum(
        np.asarray(sharpness, dtype=float), 1e-6)
    raw = 1.0 / (1.0 + np.exp(-z))
    return np.clip(raw - np.asarray(confidence_shift, dtype=float), 0.0, 1.0)


@dataclass(frozen=True)
class RampObservation:
    """What the controller records for one (input, ramp) pair (§3.2).

    Attributes
    ----------
    ramp_id:
        Identifier of the ramp (its position index in the model).
    depth_fraction:
        Fraction of model latency elapsed at the ramp.
    error_score:
        Entropy-style error of the ramp's top prediction (lower = more
        confident); the ramp exits when this is *below* its threshold.
    correct:
        Whether the ramp's top prediction matches the original model's output
        (Apparate always has this because inputs run to completion).
    """

    ramp_id: int
    depth_fraction: float
    error_score: float
    correct: bool

    def would_exit(self, threshold: float) -> bool:
        """Whether this observation exits under ``threshold``."""
        return self.error_score < threshold


class PredictionModel:
    """Per-model synthetic prediction behaviour.

    Parameters
    ----------
    spec:
        Model whose overparameterization (``headroom``) shapes difficulty.
    seed:
        Seed for the confusion-floor draws (kept separate from workloads so
        that the same workload replayed on two models stays comparable).
    """

    def __init__(self, spec: ModelSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = int(seed)

    def _confusion_draw(self, raw_difficulty: float, depth_fraction: float) -> float:
        """Deterministic pseudo-uniform used for the confusion floor.

        Determinism matters: the oracle baseline and the controller's replay
        evaluation must see the same correctness for the same (input, ramp)
        pair, otherwise accuracy accounting would drift between passes.
        """
        key = (self.seed, round(float(raw_difficulty), 9), round(float(depth_fraction), 9))
        return (hash(key) & 0xFFFFFFFF) / float(0x100000000)

    # ------------------------------------------------------------ per input
    def required_depth(self, raw_difficulty: float) -> float:
        """Earliest depth fraction at which this input's prediction emerges."""
        return float(effective_difficulty(raw_difficulty, self.spec.headroom))

    def required_depths(self, raw_difficulties: Sequence[float]) -> np.ndarray:
        return np.asarray(effective_difficulty(np.asarray(raw_difficulties, dtype=float),
                                               self.spec.headroom))

    def error_score(self, raw_difficulty: float, depth_fraction: float,
                    sharpness: float = 0.06, confidence_shift: float = 0.0) -> float:
        """Error score of a ramp at ``depth_fraction`` for this input."""
        d = self.required_depth(raw_difficulty)
        return float(ramp_error_score(d, depth_fraction, sharpness, confidence_shift))

    def is_correct(self, raw_difficulty: float, depth_fraction: float) -> bool:
        """Whether a ramp at ``depth_fraction`` matches the original model."""
        d = self.required_depth(raw_difficulty)
        if depth_fraction >= d:
            return True
        return self._confusion_draw(raw_difficulty, depth_fraction) < _GUESS_AGREEMENT

    # ----------------------------------------------------------- per request
    def observe(self, raw_difficulty: float, sharpness: float,
                ramp_ids: Sequence[int], ramp_depths: Sequence[float],
                confidence_shift: float = 0.0) -> List[RampObservation]:
        """Produce the observations recorded for one input at active ramps.

        Observations are produced for *every* active ramp regardless of
        upstream exits, because with Apparate all inputs run to the end of the
        model (§3).
        """
        d = self.required_depth(raw_difficulty)
        observations: List[RampObservation] = []
        for ramp_id, depth in zip(ramp_ids, ramp_depths):
            err = float(ramp_error_score(d, depth, sharpness, confidence_shift))
            correct = self.is_correct(raw_difficulty, depth)
            observations.append(RampObservation(ramp_id=int(ramp_id),
                                                depth_fraction=float(depth),
                                                error_score=err,
                                                correct=correct))
        return observations

    def exit_depth(self, raw_difficulty: float, sharpness: float,
                   ramp_depths: Sequence[float], thresholds: Sequence[float],
                   confidence_shift: float = 0.0) -> float | None:
        """Depth fraction of the earliest ramp that exits, or ``None``.

        This mirrors the runtime exiting rule: walk ramps in order and exit at
        the first one whose error score is below its threshold.
        """
        d = self.required_depth(raw_difficulty)
        for depth, threshold in zip(ramp_depths, thresholds):
            if threshold <= 0.0:
                continue
            if float(ramp_error_score(d, depth, sharpness, confidence_shift)) < threshold:
                return float(depth)
        return None
