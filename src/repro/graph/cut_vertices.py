"""Cut-vertex analysis for ramp placement (paper §3.1, Figure 7).

Apparate marks a node as a *feasible ramp position* when it is a cut vertex of
the dataflow graph: no edge may start before the node and re-enter the model's
computation after it.  Ramps attached at such nodes therefore consume every
intermediate the original model has produced so far.  Inside residual blocks
(ResNet blocks, BERT encoders) the skip connection bypasses the interior
nodes, so only block boundaries qualify; in chained models such as VGG every
layer qualifies.
"""

from __future__ import annotations

from typing import List, Set

import networkx as nx

from repro.graph.ir import ModelGraph, Node, OpCategory

__all__ = ["cut_vertex_nodes", "feasible_ramp_positions"]

# Operator categories that never host a ramp even when structurally feasible:
# the graph input (nothing has been computed yet), the embedding lookup (same
# reason for transformers) and the model's own output head.
_EXCLUDED_OPS: Set[OpCategory] = {OpCategory.INPUT, OpCategory.EMBEDDING, OpCategory.OUTPUT}


def cut_vertex_nodes(graph: ModelGraph) -> List[str]:
    """Return names of nodes that are cut vertices of the dataflow graph.

    A node ``v`` qualifies when every path from the model input to the model
    output passes through ``v``; equivalently, removing ``v`` disconnects the
    (undirected view of the) graph, or ``v`` is the input/output endpoint of a
    single-path graph.  Results are returned in topological order.
    """
    graph.validate()
    undirected = graph.nx_graph.to_undirected()
    articulation = set(nx.articulation_points(undirected))

    # Endpoints of the graph are never articulation points but every path
    # trivially passes through them; include them so that callers can filter
    # by operator category instead.
    endpoints = {graph.input_nodes()[0].name, graph.output_nodes()[0].name}

    names_in_order = [n.name for n in graph.topological_order()]
    qualifying = articulation | endpoints
    return [name for name in names_in_order if name in qualifying]


def feasible_ramp_positions(graph: ModelGraph) -> List[Node]:
    """Return nodes where Apparate may attach a ramp, in topological order.

    Structural feasibility (cut vertex) is combined with semantic exclusions:
    ramps are never attached to the raw input, embedding lookups or the final
    output head, since a ramp there would either see no computation or
    duplicate the model's own classifier.
    """
    positions: List[Node] = []
    for name in cut_vertex_nodes(graph):
        node = graph.node(name)
        if node.op in _EXCLUDED_OPS:
            continue
        positions.append(node)
    return positions


def ramp_coverage(graph: ModelGraph) -> float:
    """Fraction of (non-input/output) layers that can host a ramp.

    The paper reports 9.2–68.4% coverage across its model corpus; this helper
    is used by tests to confirm the builders land in a comparable range.
    """
    eligible = [n for n in graph.nodes() if n.op not in _EXCLUDED_OPS]
    if not eligible:
        return 0.0
    return len(feasible_ramp_positions(graph)) / len(eligible)
