"""A lightweight ONNX-like dataflow IR.

The IR represents a model as a directed acyclic graph of operator nodes.  It
carries just enough structure for Apparate's model-preparation phase:

* topology (edges between operators) — used to find cut vertices, i.e. legal
  ramp positions;
* per-node metadata (operator category, parameter count, FLOPs share, output
  width) — used to size ramps and to split the model's latency profile across
  layers;
* block annotations (e.g. which residual/encoder block a node belongs to) —
  used to report human-readable ramp locations.

The graph is deliberately framework-agnostic: builders in
:mod:`repro.graph.builders` synthesize graphs with the same block structure as
the real ResNet / VGG / BERT / GPT-2 / T5 / Llama2 models the paper evaluates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

__all__ = ["OpCategory", "Node", "ModelGraph"]


class OpCategory(str, enum.Enum):
    """Coarse operator categories (sufficient for ramp placement decisions)."""

    INPUT = "input"
    CONV = "conv"
    POOL = "pool"
    NORM = "norm"
    ACTIVATION = "activation"
    ADD = "add"
    ATTENTION = "attention"
    FEEDFORWARD = "feedforward"
    EMBEDDING = "embedding"
    LINEAR = "linear"
    OUTPUT = "output"


@dataclass
class Node:
    """One operator in the dataflow graph.

    Attributes
    ----------
    name:
        Unique node identifier, e.g. ``"layer2.block1.conv2"``.
    op:
        Operator category.
    block:
        Name of the coarse block the node belongs to (residual block, encoder
        layer, ...) or ``None`` for top-level nodes.
    params:
        Number of trainable parameters attributed to this node.
    flops_share:
        Fraction of whole-model FLOPs attributed to this node (sums to ~1).
    output_width:
        Width (channel / hidden dimension) of the node's output tensor, used
        to size the fully-connected layer of a ramp attached here.
    """

    name: str
    op: OpCategory
    block: Optional[str] = None
    params: int = 0
    flops_share: float = 0.0
    output_width: int = 0


class ModelGraph:
    """Directed acyclic dataflow graph of :class:`Node` objects."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._g = nx.DiGraph()
        self._nodes: Dict[str, Node] = {}

    # ------------------------------------------------------------------ build
    def add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name: {node.name}")
        self._nodes[node.name] = node
        self._g.add_node(node.name)
        return node

    def add_edge(self, src: str, dst: str) -> None:
        if src not in self._nodes or dst not in self._nodes:
            raise KeyError(f"unknown node in edge {src!r} -> {dst!r}")
        self._g.add_edge(src, dst)
        if not nx.is_directed_acyclic_graph(self._g):
            self._g.remove_edge(src, dst)
            raise ValueError(f"edge {src!r} -> {dst!r} would create a cycle")

    # ------------------------------------------------------------ inspection
    @property
    def nx_graph(self) -> nx.DiGraph:
        return self._g

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def nodes(self) -> List[Node]:
        return [self._nodes[n] for n in self._g.nodes]

    def num_nodes(self) -> int:
        return len(self._nodes)

    def edges(self) -> List[Tuple[str, str]]:
        return list(self._g.edges)

    def successors(self, name: str) -> List[str]:
        return list(self._g.successors(name))

    def predecessors(self, name: str) -> List[str]:
        return list(self._g.predecessors(name))

    def topological_order(self) -> List[Node]:
        """Nodes in a deterministic topological order."""
        order = list(nx.lexicographical_topological_sort(self._g))
        return [self._nodes[n] for n in order]

    def input_nodes(self) -> List[Node]:
        return [self._nodes[n] for n in self._g.nodes if self._g.in_degree(n) == 0]

    def output_nodes(self) -> List[Node]:
        return [self._nodes[n] for n in self._g.nodes if self._g.out_degree(n) == 0]

    def blocks(self) -> List[str]:
        """Distinct block names in topological order of first appearance."""
        seen: Set[str] = set()
        ordered: List[str] = []
        for node in self.topological_order():
            if node.block and node.block not in seen:
                seen.add(node.block)
                ordered.append(node.block)
        return ordered

    def total_params(self) -> int:
        return sum(n.params for n in self._nodes.values())

    def total_flops_share(self) -> float:
        return sum(n.flops_share for n in self._nodes.values())

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Raise ``ValueError`` if the graph is not a well-formed model graph."""
        if self.num_nodes() == 0:
            raise ValueError("empty graph")
        if not nx.is_directed_acyclic_graph(self._g):
            raise ValueError("graph contains a cycle")
        inputs = self.input_nodes()
        outputs = self.output_nodes()
        if len(inputs) != 1:
            raise ValueError(f"expected exactly one input node, found {len(inputs)}")
        if len(outputs) != 1:
            raise ValueError(f"expected exactly one output node, found {len(outputs)}")
        undirected = self._g.to_undirected()
        if not nx.is_connected(undirected):
            raise ValueError("graph is not connected")

    def depth_fraction(self, name: str) -> float:
        """Fraction of model FLOPs executed once ``name`` has been computed.

        This is the "depth" used to reason about how much of the model a ramp
        placed after ``name`` gets to observe, and hence how much latency an
        exit at that ramp saves.
        """
        order = self.topological_order()
        total = sum(n.flops_share for n in order) or 1.0
        running = 0.0
        for node in order:
            running += node.flops_share
            if node.name == name:
                return running / total
        raise KeyError(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModelGraph(name={self.name!r}, nodes={self.num_nodes()}, edges={len(self.edges())})"
