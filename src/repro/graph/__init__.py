"""Model-graph substrate: an ONNX-like dataflow IR plus structural analysis.

Apparate accepts models as dataflow graphs and places early-exit ramps only at
*cut vertices* — operators whose removal disconnects the graph — so that every
ramp sees the full set of intermediates produced up to that point (paper §3.1,
Figure 7).  This subpackage provides the graph IR, the cut-vertex analysis and
builders for the model families used in the paper's evaluation.
"""

from repro.graph.ir import Node, ModelGraph, OpCategory
from repro.graph.cut_vertices import cut_vertex_nodes, feasible_ramp_positions
from repro.graph.builders import (
    build_resnet,
    build_vgg,
    build_bert,
    build_gpt,
    build_t5,
    build_llama,
    build_graph_for_model,
)

__all__ = [
    "Node",
    "ModelGraph",
    "OpCategory",
    "cut_vertex_nodes",
    "feasible_ramp_positions",
    "build_resnet",
    "build_vgg",
    "build_bert",
    "build_gpt",
    "build_t5",
    "build_llama",
    "build_graph_for_model",
]
