"""Builders for the model-family graphs used in the paper's evaluation.

Each builder synthesizes a :class:`~repro.graph.ir.ModelGraph` with the same
block structure as the real architecture:

* **ResNet** — a convolutional stem followed by residual blocks; each block's
  interior conv nodes are bypassed by a skip edge into the block's ``add``
  node, so only the ``add`` nodes (block outputs) are cut vertices (Figure 7a).
* **VGG** — a pure chain of conv/pool layers; every layer is a cut vertex
  (Figure 7b).
* **BERT / DistilBERT / GPT-2 / T5 / Llama2** — embedding followed by
  transformer blocks, each containing attention and feed-forward residual
  sub-blocks; only the block outputs are cut vertices (Figure 7c).

Parameter counts and FLOPs shares are approximate but proportioned like the
real models so that ramp-size and latency-share computations behave the same
way they would on the real graphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.graph.ir import ModelGraph, Node, OpCategory

__all__ = [
    "build_resnet",
    "build_vgg",
    "build_bert",
    "build_gpt",
    "build_t5",
    "build_llama",
    "build_graph_for_model",
]

# Residual-block counts per ResNet stage, matching torchvision definitions.
_RESNET_STAGES: Dict[int, Sequence[int]] = {
    18: (2, 2, 2, 2),
    34: (3, 4, 6, 3),
    50: (3, 4, 6, 3),
    101: (3, 4, 23, 3),
}

# Conv layers per VGG stage (the "A"/"B"/"D" configurations).
_VGG_STAGES: Dict[int, Sequence[int]] = {
    11: (1, 1, 2, 2, 2),
    13: (2, 2, 2, 2, 2),
    16: (2, 2, 3, 3, 3),
}

_STAGE_WIDTHS = (64, 128, 256, 512)
_VGG_WIDTHS = (64, 128, 256, 512, 512)


def build_resnet(depth: int, num_classes: int = 1000) -> ModelGraph:
    """Build a ResNet-{18,34,50,101} style residual graph."""
    if depth not in _RESNET_STAGES:
        raise ValueError(f"unsupported ResNet depth: {depth}")
    stages = _RESNET_STAGES[depth]
    bottleneck = depth >= 50
    convs_per_block = 3 if bottleneck else 2
    expansion = 4 if bottleneck else 1

    g = ModelGraph(f"resnet{depth}")
    g.add_node(Node("input", OpCategory.INPUT))
    g.add_node(Node("stem.conv", OpCategory.CONV, block="stem", params=9_408,
                    flops_share=0.03, output_width=64))
    g.add_node(Node("stem.pool", OpCategory.POOL, block="stem", flops_share=0.005,
                    output_width=64))
    g.add_edge("input", "stem.conv")
    g.add_edge("stem.conv", "stem.pool")
    prev = "stem.pool"

    total_blocks = sum(stages)
    # Spread the remaining FLOPs roughly evenly over residual blocks, matching
    # the fairly even per-block cost of real ResNets.
    block_share = (1.0 - 0.035 - 0.01) / total_blocks

    for stage_idx, num_blocks in enumerate(stages):
        width = _STAGE_WIDTHS[stage_idx] * expansion
        for block_idx in range(num_blocks):
            block = f"layer{stage_idx + 1}.block{block_idx}"
            entry = prev
            inner_prev = entry
            per_conv_share = block_share / convs_per_block
            for conv_idx in range(convs_per_block):
                conv_name = f"{block}.conv{conv_idx + 1}"
                g.add_node(Node(conv_name, OpCategory.CONV, block=block,
                                params=width * width * 3,
                                flops_share=per_conv_share, output_width=width))
                g.add_edge(inner_prev, conv_name)
                inner_prev = conv_name
            add_name = f"{block}.add"
            g.add_node(Node(add_name, OpCategory.ADD, block=block,
                            flops_share=0.0, output_width=width))
            g.add_edge(inner_prev, add_name)
            g.add_edge(entry, add_name)  # residual skip connection
            prev = add_name

    g.add_node(Node("head.pool", OpCategory.POOL, flops_share=0.005, output_width=width))
    g.add_node(Node("head.fc", OpCategory.LINEAR, params=width * num_classes,
                    flops_share=0.005, output_width=num_classes))
    g.add_node(Node("output", OpCategory.OUTPUT, output_width=num_classes))
    g.add_edge(prev, "head.pool")
    g.add_edge("head.pool", "head.fc")
    g.add_edge("head.fc", "output")
    return g


def build_vgg(depth: int, num_classes: int = 1000) -> ModelGraph:
    """Build a VGG-{11,13,16} style chained graph (every layer is a cut vertex)."""
    if depth not in _VGG_STAGES:
        raise ValueError(f"unsupported VGG depth: {depth}")
    stages = _VGG_STAGES[depth]

    g = ModelGraph(f"vgg{depth}")
    g.add_node(Node("input", OpCategory.INPUT))
    prev = "input"
    total_convs = sum(stages)
    conv_share = 0.92 / total_convs

    for stage_idx, num_convs in enumerate(stages):
        width = _VGG_WIDTHS[stage_idx]
        for conv_idx in range(num_convs):
            block = f"stage{stage_idx + 1}"
            conv_name = f"{block}.conv{conv_idx + 1}"
            g.add_node(Node(conv_name, OpCategory.CONV, block=block,
                            params=width * width * 9,
                            flops_share=conv_share, output_width=width))
            g.add_edge(prev, conv_name)
            prev = conv_name
        pool_name = f"stage{stage_idx + 1}.pool"
        g.add_node(Node(pool_name, OpCategory.POOL, block=f"stage{stage_idx + 1}",
                        flops_share=0.002, output_width=width))
        g.add_edge(prev, pool_name)
        prev = pool_name

    for fc_idx, fc_width in enumerate((4096, 4096, num_classes)):
        fc_name = f"classifier.fc{fc_idx + 1}"
        share = 0.02 if fc_idx < 2 else 0.005
        g.add_node(Node(fc_name, OpCategory.LINEAR, params=fc_width * 4096,
                        flops_share=share, output_width=fc_width))
        g.add_edge(prev, fc_name)
        prev = fc_name
    g.add_node(Node("output", OpCategory.OUTPUT, output_width=num_classes))
    g.add_edge(prev, "output")
    return g


def _build_transformer(name: str, num_blocks: int, hidden: int, num_classes: int,
                       decoder_only: bool = False) -> ModelGraph:
    """Shared builder for encoder-only / decoder-only transformer graphs."""
    g = ModelGraph(name)
    g.add_node(Node("input", OpCategory.INPUT))
    g.add_node(Node("embedding", OpCategory.EMBEDDING, params=30_000 * hidden,
                    flops_share=0.01, output_width=hidden))
    g.add_edge("input", "embedding")
    prev = "embedding"

    block_share = (1.0 - 0.01 - 0.01) / num_blocks
    attn_share = block_share * 0.45
    ffn_share = block_share * 0.55
    per_block_params = 12 * hidden * hidden

    for block_idx in range(num_blocks):
        block = f"encoder{block_idx}" if not decoder_only else f"decoder{block_idx}"
        entry = prev
        attn = f"{block}.attention"
        attn_add = f"{block}.attention_add"
        ffn = f"{block}.ffn"
        ffn_add = f"{block}.ffn_add"
        g.add_node(Node(attn, OpCategory.ATTENTION, block=block,
                        params=per_block_params // 3,
                        flops_share=attn_share, output_width=hidden))
        g.add_node(Node(attn_add, OpCategory.ADD, block=block, output_width=hidden))
        g.add_node(Node(ffn, OpCategory.FEEDFORWARD, block=block,
                        params=2 * per_block_params // 3,
                        flops_share=ffn_share, output_width=hidden))
        g.add_node(Node(ffn_add, OpCategory.ADD, block=block, output_width=hidden))
        g.add_edge(entry, attn)
        g.add_edge(attn, attn_add)
        g.add_edge(entry, attn_add)          # attention residual
        g.add_edge(attn_add, ffn)
        g.add_edge(ffn, ffn_add)
        g.add_edge(attn_add, ffn_add)        # feed-forward residual
        prev = ffn_add

    g.add_node(Node("head.pool", OpCategory.POOL, flops_share=0.002, output_width=hidden))
    g.add_node(Node("head.fc", OpCategory.LINEAR, params=hidden * num_classes,
                    flops_share=0.008, output_width=num_classes))
    g.add_node(Node("output", OpCategory.OUTPUT, output_width=num_classes))
    g.add_edge(prev, "head.pool")
    g.add_edge("head.pool", "head.fc")
    g.add_edge("head.fc", "output")
    return g


def build_bert(num_blocks: int = 12, hidden: int = 768, num_classes: int = 2,
               name: Optional[str] = None) -> ModelGraph:
    """Build a BERT-style encoder-only graph (BERT-base/large, DistilBERT)."""
    return _build_transformer(name or f"bert{num_blocks}", num_blocks, hidden, num_classes)


def build_gpt(num_blocks: int = 24, hidden: int = 1024, num_classes: int = 2,
              name: Optional[str] = None) -> ModelGraph:
    """Build a GPT-2-style decoder-only graph."""
    return _build_transformer(name or f"gpt{num_blocks}", num_blocks, hidden, num_classes,
                              decoder_only=True)


def build_t5(num_blocks: int = 24, hidden: int = 1024, vocab: int = 32_128,
             name: str = "t5-large") -> ModelGraph:
    """Build a T5-style graph (decoder side; ramps only apply during decoding)."""
    return _build_transformer(name, num_blocks, hidden, vocab, decoder_only=True)


def build_llama(num_blocks: int = 32, hidden: int = 4096, vocab: int = 32_000,
                name: str = "llama2-7b") -> ModelGraph:
    """Build a Llama2-style decoder-only graph."""
    return _build_transformer(name, num_blocks, hidden, vocab, decoder_only=True)


# ---------------------------------------------------------------------------
# Registry-style dispatch used by the model zoo.
# ---------------------------------------------------------------------------

def build_graph_for_model(model_name: str) -> ModelGraph:
    """Build the dataflow graph for one of the evaluation models by name."""
    name = model_name.lower()
    if name.startswith("resnet"):
        return build_resnet(int(name.removeprefix("resnet")))
    if name.startswith("vgg"):
        return build_vgg(int(name.removeprefix("vgg")))
    if name == "distilbert-base":
        return build_bert(num_blocks=6, hidden=768, name="distilbert-base")
    if name == "bert-base":
        return build_bert(num_blocks=12, hidden=768, name="bert-base")
    if name == "bert-large":
        return build_bert(num_blocks=24, hidden=1024, name="bert-large")
    if name in ("bert-base-int8", "bert-large-int8"):
        base = build_graph_for_model(name.removesuffix("-int8"))
        base.name = name
        return base
    if name == "gpt2-medium":
        return build_gpt(num_blocks=24, hidden=1024, name="gpt2-medium")
    if name == "t5-large":
        return build_t5(num_blocks=24, hidden=1024)
    if name == "llama2-7b":
        return build_llama(num_blocks=32, hidden=4096, name="llama2-7b")
    if name == "llama2-13b":
        return build_llama(num_blocks=40, hidden=5120, name="llama2-13b")
    raise ValueError(f"unknown model: {model_name}")
