"""Setup shim so that editable installs work without the `wheel` package.

All project metadata lives in pyproject.toml; this file only exists because
the offline environment lacks `wheel`, which PEP 660 editable installs via
setuptools would otherwise require.
"""

from setuptools import setup

setup()
